"""Ensemble and parameter-grid utilities.

Noise realisations make single trajectories anecdotal; the paper's
qualitative claims ("the system resynchronises", "the gaps settle at
2*sigma/3") are statements about typical behaviour.  This module runs
seed ensembles and parameter grids and aggregates arbitrary metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from .model import PhysicalOscillatorModel
from .simulation import default_dt, simulate, simulate_batched, simulate_grid
from .trajectory import OscillatorTrajectory

__all__ = ["EnsembleResult", "run_ensemble", "GridResult", "grid_sweep"]


@dataclass
class EnsembleResult:
    """Aggregated metrics over a seed ensemble.

    Attributes
    ----------
    seeds:
        The seeds used.
    values:
        ``{metric_name: array over seeds}``.
    """

    seeds: tuple[int, ...]
    values: dict[str, np.ndarray] = field(default_factory=dict)

    def mean(self, name: str) -> float:
        """Ensemble mean of one metric (NaN-aware)."""
        return float(np.nanmean(self.values[name]))

    def std(self, name: str) -> float:
        """Ensemble standard deviation (NaN-aware)."""
        return float(np.nanstd(self.values[name]))

    def quantile(self, name: str, q: float) -> float:
        """Ensemble quantile (NaN-aware)."""
        return float(np.nanquantile(self.values[name], q))

    def summary(self) -> dict:
        """``{metric: {"mean": ..., "std": ...}}`` for reports."""
        return {
            name: {"mean": self.mean(name), "std": self.std(name)}
            for name in self.values
        }


def run_ensemble(
    model: PhysicalOscillatorModel,
    t_end: float,
    metrics: Mapping[str, Callable[[OscillatorTrajectory], float]],
    *,
    seeds: Sequence[int] = tuple(range(8)),
    theta0_factory: Callable[[int], np.ndarray] | None = None,
    batched: bool = False,
    **simulate_kwargs,
) -> EnsembleResult:
    """Simulate the model once per seed and evaluate the metrics.

    Parameters
    ----------
    model:
        The declarative model (noise channels re-realised per seed).
    t_end:
        Horizon per run.
    metrics:
        Named callables ``f(trajectory) -> float``.
    seeds:
        Ensemble seeds (also fed to ``theta0_factory``).
    theta0_factory:
        Optional per-seed initial condition, ``f(seed) -> (n,)``.
    batched:
        If True, stack all seeds into one ``(R, N)`` super-state and
        integrate the whole ensemble in a single solver pass
        (:func:`repro.core.simulation.simulate_batched`) — typically
        several times faster than the sequential loop.  The members
        then share one (adaptive) time mesh.  Works for ``method="em"``
        too: the stacked solve draws each member's Wiener increments
        from its own seeded stream, reproducing the sequential per-seed
        runs bit for bit (at equal ``dt``).
    simulate_kwargs:
        Forwarded to :func:`repro.core.simulate` (or its batched
        counterpart).
    """
    if not metrics:
        raise ValueError("need at least one metric")
    out: dict[str, list[float]] = {name: [] for name in metrics}
    if batched:
        trajs = simulate_batched(model, t_end, seeds=seeds,
                                 theta0_factory=theta0_factory,
                                 **simulate_kwargs)
        for traj in trajs:
            for name, fn in metrics.items():
                out[name].append(float(fn(traj)))
    else:
        for seed in seeds:
            theta0 = theta0_factory(seed) if theta0_factory is not None else None
            traj = simulate(model, t_end, theta0=theta0, seed=seed,
                            **simulate_kwargs)
            for name, fn in metrics.items():
                out[name].append(float(fn(traj)))
    return EnsembleResult(
        seeds=tuple(int(s) for s in seeds),
        values={name: np.asarray(vals) for name, vals in out.items()},
    )


@dataclass
class GridResult:
    """Outcome of a parameter-grid sweep.

    Attributes
    ----------
    param_names:
        Order of the swept parameters.
    points:
        List of parameter dicts, one per grid point.
    results:
        The runner's return value per point.
    """

    param_names: tuple[str, ...]
    points: list[dict]
    results: list

    def column(self, extractor: Callable) -> np.ndarray:
        """Apply an extractor to every result; returns an array."""
        return np.asarray([extractor(r) for r in self.results])

    def as_table(self, extractors: Mapping[str, Callable]) -> dict:
        """Columns dict (parameters + extracted metrics) for CSV export."""
        table: dict[str, list] = {name: [] for name in self.param_names}
        for point in self.points:
            for name in self.param_names:
                table[name].append(point[name])
        for name, fn in extractors.items():
            table[name] = [fn(r) for r in self.results]
        return table

    def write_csv(self, path, extractors: Mapping[str, Callable],
                  *, meta: Mapping | None = None) -> Path:
        """Write the :meth:`as_table` columns as a CSV artefact.

        Round-trips through :func:`repro.viz.export.read_csv`.
        """
        from ..viz.export import write_csv as _write_csv
        return _write_csv(path, self.as_table(extractors), meta=meta)


def grid_sweep(param_grid: Mapping[str, Sequence],
               runner: Callable[..., object] | None = None,
               *,
               model_factory: Callable[..., PhysicalOscillatorModel] | None = None,
               batched: bool = False,
               t_end: float | None = None,
               seed: int | None = None,
               theta0: Sequence[float] | np.ndarray | None = None,
               **simulate_kwargs) -> GridResult:
    """Evaluate every point of the Cartesian grid ``param_grid``.

    Two modes:

    * **runner mode** (the original API): call ``runner(**point)`` per
      grid point and collect whatever it returns.
    * **model mode**: ``model_factory(**point)`` builds one declarative
      model per grid point; the results are
      :class:`~repro.core.trajectory.OscillatorTrajectory` objects.
      With ``batched=True`` all grid points are stacked into a single
      ``(R, N)`` super-state and integrated in *one* solver pass
      (:func:`repro.core.simulation.simulate_grid`) — typically several
      times faster than the point-by-point loop; with ``batched=False``
      each point runs through :func:`simulate` individually (same seeds
      and fixed-step methods give machine-identical phases, so the two
      paths are interchangeable).

    Parameters
    ----------
    param_grid:
        Maps parameter names to value lists (Cartesian product).
    runner:
        Runner-mode callable; mutually exclusive with ``model_factory``.
    model_factory:
        Model-mode callable ``f(**point) -> PhysicalOscillatorModel``.
    batched:
        Model mode only: integrate the whole grid in one stacked solve.
    t_end:
        Model mode only: shared integration horizon (required).
    seed:
        Model mode only: noise-realisation seed applied to every point
        (default 0).
    theta0:
        Model mode only: shared initial phases (default synchronised).
    simulate_kwargs:
        Model mode only: forwarded to :func:`simulate` /
        :func:`simulate_grid` (``method``, ``dt``, ``rtol``, ...).
        When ``dt`` is not given, one shared fixed step — the smallest
        :func:`~repro.core.simulation.default_dt` over the grid — is
        used for *both* paths, so looped and batched fixed-step results
        stay machine-identical even when the points' own default steps
        would differ.
    """
    if not param_grid:
        raise ValueError("parameter grid must not be empty")
    if (runner is None) == (model_factory is None):
        raise ValueError("need exactly one of runner= or model_factory=")
    if runner is not None:
        extra = {"batched": batched or None, "t_end": t_end, "seed": seed,
                 "theta0": theta0, **simulate_kwargs}
        offending = sorted(k for k, v in extra.items() if v is not None)
        if offending:
            raise ValueError(
                f"{', '.join(offending)} only apply to model_factory= "
                "mode, not runner= mode"
            )
    if model_factory is not None and t_end is None:
        raise ValueError("model_factory= requires t_end=")

    names = tuple(param_grid.keys())
    points = [dict(zip(names, combo))
              for combo in itertools.product(*(param_grid[n] for n in names))]

    if runner is not None:
        results: list = [runner(**point) for point in points]
    else:
        models = [model_factory(**point) for point in points]
        if "dt" not in simulate_kwargs:
            simulate_kwargs = {**simulate_kwargs,
                               "dt": min(default_dt(m) for m in models)}
        seed = 0 if seed is None else seed
        if batched:
            results = simulate_grid(models, t_end, seeds=seed, theta0=theta0,
                                    **simulate_kwargs)
        else:
            results = [simulate(m, t_end, theta0=theta0, seed=seed,
                                **simulate_kwargs) for m in models]
    return GridResult(param_names=names, points=points, results=results)
