"""Coupling-strength computation (paper Sec. 3.1).

The physical oscillator model scales the interaction term by

    v_p = beta * kappa / (t_comp + t_comm)

motivated by the analytic idle-wave model of Afzal et al. [4]:

* ``beta`` encodes the messaging protocol — eager sends complete without
  the receiver's participation (``beta = 1``); rendezvous sends couple
  the two processes more tightly (``beta = 2``).
* ``kappa`` encodes the communication distances — the sum over all
  distances of the topology, or only the *longest* distance when all
  outstanding non-blocking requests are grouped in one ``MPI_Waitall``
  (the waits then overlap instead of chaining).

The product ``beta * kappa`` is the key dimensionless knob of Sec. 5.1:
``beta*kappa ~ 0`` means free-running processes, ``beta*kappa = 1`` is
next-neighbour coupling with the slowest possible idle wave, large
``beta*kappa`` makes the system stiff and strongly synchronising.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .topology import Topology

__all__ = ["Protocol", "WaitMode", "CouplingSpec"]


class Protocol(enum.Enum):
    """MPI point-to-point messaging protocol.

    ``EAGER``: small messages are shipped immediately and buffered at the
    receiver; the sender never blocks (beta = 1).
    ``RENDEZVOUS``: large messages wait for the matching receive before
    the transfer starts; sender and receiver handshake (beta = 2).
    """

    EAGER = "eager"
    RENDEZVOUS = "rendezvous"

    @property
    def beta(self) -> float:
        """Idle-wave speed multiplier from the analytic model [4]."""
        return 1.0 if self is Protocol.EAGER else 2.0


class WaitMode(enum.Enum):
    """How outstanding non-blocking requests are completed.

    ``SEPARATE``: one ``MPI_Wait`` per request — the waits chain, so all
    distances contribute (kappa = sum of |distances|).
    ``WAITALL``: a single ``MPI_Waitall`` over all partners — the waits
    overlap, so only the longest distance matters (kappa = max).
    """

    SEPARATE = "separate"
    WAITALL = "waitall"


@dataclass(frozen=True)
class CouplingSpec:
    """Everything needed to compute the coupling strength ``v_p``.

    Parameters
    ----------
    protocol:
        Eager or rendezvous messaging (sets beta).
    wait_mode:
        Separate waits vs. one grouped waitall (sets the kappa rule).
    strength_scale:
        Optional extra multiplier on ``v_p`` for parameter studies
        (default 1.0 — the paper's formula verbatim).
    """

    protocol: Protocol = Protocol.EAGER
    wait_mode: WaitMode = WaitMode.SEPARATE
    strength_scale: float = 1.0

    @property
    def beta(self) -> float:
        """Protocol factor (1 eager, 2 rendezvous)."""
        return self.protocol.beta

    def kappa(self, topology: Topology) -> float:
        """Distance factor for the given topology under the wait rule."""
        return topology.kappa(waitall_grouped=self.wait_mode is WaitMode.WAITALL)

    def beta_kappa(self, topology: Topology) -> float:
        """The dimensionless stiffness knob ``beta * kappa``."""
        return self.beta * self.kappa(topology)

    def v_p(self, topology: Topology, t_comp: float, t_comm: float) -> float:
        """Coupling strength ``v_p = beta * kappa / (t_comp + t_comm)``.

        Raises if the cycle time is not positive.
        """
        cycle = t_comp + t_comm
        if cycle <= 0:
            raise ValueError("t_comp + t_comm must be positive")
        return self.strength_scale * self.beta * self.kappa(topology) / cycle

    def describe(self, topology: Topology | None = None) -> dict:
        """Metadata dictionary used by exporters."""
        d = {
            "protocol": self.protocol.value,
            "wait_mode": self.wait_mode.value,
            "beta": self.beta,
            "strength_scale": self.strength_scale,
        }
        if topology is not None:
            d["kappa"] = self.kappa(topology)
            d["beta_kappa"] = self.beta_kappa(topology)
        return d
