"""Interaction potentials for the physical oscillator model.

The potential ``V`` maps a phase difference ``dtheta = theta_j - theta_i``
to the pull (positive: oscillator *i* is accelerated towards *j*) that a
connected partner exerts.  The paper (Sec. 5.2) introduces two
characteristic potentials:

* :class:`TanhPotential` (Eq. 3) for **resource-scalable** programs —
  attractive at every phase distance, so any disturbance relaxes back to
  the synchronised state (self-resynchronisation, firefly-like).
* :class:`BottleneckPotential` (Eq. 4) for **resource-bottlenecked**
  programs — repulsive at short range, attractive beyond the
  "interaction horizon" ``sigma``.  Its first zero at ``2*sigma/3``
  is the stable inter-process phase gap of the desynchronised
  (computational-wavefront) state.

:class:`KuramotoPotential` (the plain ``sin`` of Eq. 1) is kept as the
baseline the paper argues against: it is 2*pi-periodic (allows phase
slips) and has unstable/stable zeros at multiples of pi.

Sign convention
---------------
All potentials here are **odd** functions of the phase difference and are
used in the coupling sum ``sum_j T_ij * V(theta_j - theta_i)``.  A
positive value accelerates oscillator *i* (it lags and is pulled
forward); oddness makes the interaction action-reaction symmetric.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

__all__ = [
    "Potential",
    "TanhPotential",
    "BottleneckPotential",
    "KuramotoPotential",
    "LinearPotential",
    "CustomPotential",
    "potential_from_name",
]


class Potential(ABC):
    """Abstract interaction potential ``V(dtheta)``.

    Subclasses implement :meth:`__call__` vectorised over NumPy arrays.
    """

    #: human-readable identifier used by the CLI and experiment registry
    name: str = "abstract"

    @abstractmethod
    def __call__(self, dtheta: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the potential at phase difference(s) ``dtheta``."""

    @classmethod
    def stack(cls, potentials) -> Callable | None:
        """Row-wise vectorised evaluator for a family of potentials.

        Given R potentials of one parameterised family, return a
        callable mapping ``(R, E)`` phase differences to ``(R, E)``
        values where row ``r`` is evaluated with member ``r``'s
        parameters (broadcast as an ``(R, 1)`` column) — the arithmetic
        per row must be bit-identical to ``potentials[r](dtheta[r])``.
        Used by the heterogeneous batched backend so a parameter grid
        over e.g. ``sigma`` costs one vectorised call per RHS evaluation
        instead of R.  The base implementation returns ``None`` (no
        family vectorisation available; the backend falls back to a
        per-group loop).
        """
        return None

    def kernel_coefficients(self) -> tuple[int, float, float] | None:
        """Coefficient triple ``(kind, p0, p1)`` for the fused kernels.

        The compiled kernels (:mod:`repro.kernels`) evaluate the
        potential inline per edge block and cannot call back into
        Python, so each shipped family exposes its behaviour as a kind
        id plus up to two parameters (see
        :mod:`repro.kernels.coeffs` for the table).  The base
        implementation returns ``None``: potentials without a
        coefficient representation (e.g. :class:`CustomPotential`) keep
        the NumPy/tiled paths, which go through ``__call__``.
        """
        return None

    # ------------------------------------------------------------------
    # Generic analysis helpers (shared by all concrete potentials)
    # ------------------------------------------------------------------
    def stable_gap(self) -> float:
        """Phase gap at which a pair of coupled oscillators equilibrates.

        For two oscillators coupled through an odd potential the gap
        ``g = theta_j - theta_i`` obeys ``dg/dt = -(2 v_p / N) V(g)``, so
        an equilibrium gap is a zero of ``V`` and it is *stable* iff
        ``V'(g) > 0`` there.  The base implementation returns 0.0 (full
        synchrony), correct for every potential that is attractive
        everywhere (``V(g) > 0`` for ``g > 0``).
        """
        return 0.0

    def derivative(self, dtheta: float, h: float = 1e-6) -> float:
        """Central finite-difference derivative (for stability analysis)."""
        return float((self(dtheta + h) - self(dtheta - h)) / (2.0 * h))

    def antiderivative(self, dtheta):
        """``U(d) = integral_0^d V(s) ds`` — the pair potential energy.

        For an odd ``V`` this is an even function with ``U(0) = 0``; on
        symmetric topologies the co-moving phase dynamics is the
        gradient flow of the total energy built from ``U`` (see
        :func:`repro.metrics.energy.system_energy`), so ``U`` turns the
        "interaction potential" language of the paper into an actual
        Lyapunov function.  The base implementation integrates
        numerically (Simpson); subclasses override with closed forms.
        """
        d = np.atleast_1d(np.asarray(dtheta, dtype=float))
        out = np.empty_like(d)
        for idx, val in np.ndenumerate(d):
            if val == 0.0:
                out[idx] = 0.0
                continue
            xs = np.linspace(0.0, val, 201)
            ys = np.asarray(self(xs), dtype=float)
            out[idx] = np.trapezoid(ys, xs)
        if np.isscalar(dtheta):
            return float(out[0])
        return out.reshape(np.shape(dtheta))

    def is_odd(self, probe: np.ndarray | None = None, tol: float = 1e-12) -> bool:
        """Numerically check oddness on a probe grid."""
        if probe is None:
            probe = np.linspace(0.01, 10.0, 97)
        a = np.asarray(self(probe), dtype=float)
        b = np.asarray(self(-probe), dtype=float)
        return bool(np.allclose(a, -b, atol=tol))

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {"name": self.name, "stable_gap": self.stable_gap()}


class TanhPotential(Potential):
    """Scalable-program potential ``V(d) = tanh(gain * d)`` (paper Eq. 3).

    Attractive for every phase difference and saturating at +-1, it
    forces oscillators with *any* phase difference into sync — the
    self-resynchronisation behaviour of bottleneck-free bulk-synchronous
    MPI programs (paper Sec. 5.2.1).

    Parameters
    ----------
    gain:
        Slope at the origin.  The paper uses 1; exposing it allows
        studying "stiffness" without changing the coupling strength.
    """

    name = "tanh"

    def __init__(self, gain: float = 1.0) -> None:
        if gain <= 0:
            raise ValueError("gain must be positive")
        self.gain = float(gain)

    def __call__(self, dtheta):
        return np.tanh(self.gain * np.asarray(dtheta, dtype=float)) \
            if isinstance(dtheta, np.ndarray) else float(np.tanh(self.gain * dtheta))

    def stable_gap(self) -> float:
        """The only zero is at 0: full synchrony."""
        return 0.0

    @classmethod
    def stack(cls, potentials) -> Callable | None:
        if not all(type(p) is TanhPotential for p in potentials):
            return None
        gains = np.array([p.gain for p in potentials], dtype=float)[:, None]

        def stacked(dtheta: np.ndarray) -> np.ndarray:
            return np.tanh(gains * dtheta)

        return stacked

    def kernel_coefficients(self) -> tuple[int, float, float]:
        from ..kernels.coeffs import KIND_TANH
        return (KIND_TANH, self.gain, 0.0)

    def antiderivative(self, dtheta):
        """Closed form: ``U(d) = log(cosh(gain*d)) / gain`` — a convex
        well with its single minimum at synchrony."""
        d = np.asarray(dtheta, dtype=float)
        # log(cosh(x)) = |x| + log1p(exp(-2|x|)) - log(2): overflow-safe.
        x = np.abs(self.gain * d)
        out = (x + np.log1p(np.exp(-2.0 * x)) - np.log(2.0)) / self.gain
        if np.isscalar(dtheta):
            return float(out)
        return out

    def describe(self) -> dict:
        d = super().describe()
        d["gain"] = self.gain
        return d


class BottleneckPotential(Potential):
    """Bottlenecked-program potential (paper Eq. 4).

    .. math::

        V(d) = \\begin{cases}
            -\\sin\\left(\\frac{3\\pi}{2\\sigma} d\\right) & |d| < \\sigma \\\\
            \\mathrm{sgn}(d) & \\text{otherwise}
        \\end{cases}

    Eq. 4 in the paper displays the argument as ``theta_i - theta_j``
    while the coupling sum of Eq. 2 uses ``theta_j - theta_i``.  We apply
    the formula verbatim to ``d = theta_j - theta_i``: this is the only
    reading consistent with Fig. 1(a) — the curve is continuous at
    ``|d| = sigma`` (``-sin(3*pi/2) = +1 = sgn(sigma)``), approaches +1
    at large positive ``d`` exactly like the scalable tanh ("always
    attractive for large angles"), and makes the first zero ``2*sigma/3``
    stable under the pair-gap dynamics ``dg/dt ∝ -V(g)`` (``V'(2σ/3) =
    +3π/(2σ) > 0``) while the origin is unstable (``V'(0) < 0``) —
    the spontaneous-desynchronisation onset.

    Short-range (``|d| < 2*sigma/3``) the interaction is *repulsive*
    (drives phases apart — bottleneck evasion), long-range it is
    attractive (an MPI process cannot run ahead of its dependencies).
    The first zero at ``2*sigma/3`` is the stable equilibrium gap of the
    desynchronised state; ``sigma`` is the "interaction horizon" that
    correlates with idle-wave speed and phase spread (Sec. 5.2.2).

    Parameters
    ----------
    sigma:
        Interaction horizon, > 0.  Small sigma: almost synchronised /
        stiff long-range communication.  Large sigma: strong
        desynchronisation with short-range dependencies.
    """

    name = "bottleneck"

    def __init__(self, sigma: float = 1.0) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sigma = float(sigma)

    def __call__(self, dtheta):
        d = np.asarray(dtheta, dtype=float)
        scalar = d.ndim == 0
        d = np.atleast_1d(d)
        out = np.sign(d)
        inside = np.abs(d) < self.sigma
        out[inside] = -np.sin((3.0 * np.pi / (2.0 * self.sigma)) * d[inside])
        if scalar:
            return float(out[0])
        return out

    def stable_gap(self) -> float:
        """First zero of the potential: the desynchronised equilibrium gap.

        Inside the horizon ``V(d) = -sin(3*pi/(2*sigma) * d)`` vanishes at
        ``d = 2*sigma/3`` (and at 0, which is *unstable* because V is
        repulsive around it).
        """
        return 2.0 * self.sigma / 3.0

    @classmethod
    def stack(cls, potentials) -> Callable | None:
        if not all(type(p) is BottleneckPotential for p in potentials):
            return None
        sigmas = np.array([p.sigma for p in potentials], dtype=float)[:, None]
        coefs = 3.0 * np.pi / (2.0 * sigmas)

        def stacked(dtheta: np.ndarray) -> np.ndarray:
            out = np.sign(dtheta)
            inside = np.abs(dtheta) < sigmas
            out[inside] = -np.sin((coefs * dtheta)[inside])
            return out

        return stacked

    def kernel_coefficients(self) -> tuple[int, float, float]:
        # p1 pre-bakes the sine argument scale exactly as the stacked
        # family evaluator does, so all paths share one formula.
        from ..kernels.coeffs import KIND_BOTTLENECK
        return (KIND_BOTTLENECK, self.sigma, 3.0 * np.pi / (2.0 * self.sigma))

    @property
    def repulsive_range(self) -> float:
        """Width of the repulsive neighbourhood of the origin."""
        return self.stable_gap()

    def antiderivative(self, dtheta):
        """Closed form pair energy.

        Inside the horizon ``U(d) = (2*sigma/(3*pi)) *
        (cos(3*pi/(2*sigma)*d) - 1)`` — a double-well with minima at
        ``±2*sigma/3`` (the desynchronised equilibria) and a local
        *maximum* at the origin (the unstable lock-step state).
        Outside, ``U`` continues linearly with unit slope.
        """
        d = np.asarray(dtheta, dtype=float)
        a = 3.0 * np.pi / (2.0 * self.sigma)
        inside = (2.0 * self.sigma / (3.0 * np.pi)) * (np.cos(a * d) - 1.0)
        u_sigma = (2.0 * self.sigma / (3.0 * np.pi)) * (np.cos(a * self.sigma)
                                                        - 1.0)
        outside = u_sigma + (np.abs(d) - self.sigma)
        out = np.where(np.abs(d) < self.sigma, inside, outside)
        if np.isscalar(dtheta):
            return float(out)
        return out

    def describe(self) -> dict:
        d = super().describe()
        d["sigma"] = self.sigma
        return d


class KuramotoPotential(Potential):
    """Plain Kuramoto coupling ``V(d) = sin(d)`` (paper Eq. 1, baseline).

    Included to demonstrate why the paper rejects it: 2*pi periodicity
    permits phase slips (processes a full cycle apart look coupled as if
    in sync, impossible for message-dependent MPI processes), and the
    zeros at multiples of pi create spurious equilibria.
    """

    name = "kuramoto"

    def __call__(self, dtheta):
        return np.sin(np.asarray(dtheta, dtype=float)) \
            if isinstance(dtheta, np.ndarray) else float(np.sin(dtheta))

    def stable_gap(self) -> float:
        return 0.0

    def kernel_coefficients(self) -> tuple[int, float, float]:
        from ..kernels.coeffs import KIND_KURAMOTO
        return (KIND_KURAMOTO, 0.0, 0.0)

    @staticmethod
    def permits_phase_slips() -> bool:
        """Phase differences of 2*pi*k are dynamically indistinguishable."""
        return True


class LinearPotential(Potential):
    """Harmonic spring ``V(d) = k * d`` — the simplest attractive coupling.

    Useful as an analytically solvable reference: with a symmetric
    topology the dynamics are linear and the synchronisation rate equals
    the spectral gap of the graph Laplacian.  Tests use this to validate
    the model assembly against closed-form solutions.
    """

    name = "linear"

    def __init__(self, k: float = 1.0) -> None:
        self.k = float(k)

    def __call__(self, dtheta):
        d = np.asarray(dtheta, dtype=float)
        out = self.k * d
        if d.ndim == 0:
            return float(out)
        return out

    @classmethod
    def stack(cls, potentials) -> Callable | None:
        if not all(type(p) is LinearPotential for p in potentials):
            return None
        ks = np.array([p.k for p in potentials], dtype=float)[:, None]

        def stacked(dtheta: np.ndarray) -> np.ndarray:
            return ks * dtheta

        return stacked

    def kernel_coefficients(self) -> tuple[int, float, float]:
        from ..kernels.coeffs import KIND_LINEAR
        return (KIND_LINEAR, self.k, 0.0)

    def describe(self) -> dict:
        d = super().describe()
        d["k"] = self.k
        return d


class CustomPotential(Potential):
    """Wrap an arbitrary callable as a potential.

    Parameters
    ----------
    fn:
        Vectorised callable ``fn(dtheta) -> value``.
    name:
        Identifier for reports.
    stable_gap:
        Optional known equilibrium gap (defaults to 0).
    """

    def __init__(self, fn: Callable, name: str = "custom",
                 stable_gap: float = 0.0) -> None:
        self._fn = fn
        self.name = name
        self._gap = float(stable_gap)

    def __call__(self, dtheta):
        return self._fn(dtheta)

    def stable_gap(self) -> float:
        return self._gap


def potential_from_name(name: str, **kwargs) -> Potential:
    """Factory used by the CLI: build a potential from its string name.

    Accepts ``tanh`` / ``scalable``, ``bottleneck`` / ``bottlenecked`` /
    ``saturating``, ``kuramoto`` / ``sin``, ``linear``.
    """
    key = name.strip().lower()
    if key in ("tanh", "scalable"):
        return TanhPotential(**kwargs)
    if key in ("bottleneck", "bottlenecked", "saturating"):
        return BottleneckPotential(**kwargs)
    if key in ("kuramoto", "sin", "sine"):
        return KuramotoPotential()
    if key == "linear":
        return LinearPotential(**kwargs)
    raise ValueError(f"unknown potential {name!r}")
