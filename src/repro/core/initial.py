"""Initial phase configurations (paper Sec. 3.2: "different initial
conditions (synchronized, desynchronized)").

All helpers return an ``(n,)`` phase vector for ``t = 0``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "synchronized",
    "perturbed",
    "random_phases",
    "splayed",
    "wavefront",
    "initial_from_name",
]


def synchronized(n: int, phase: float = 0.0) -> np.ndarray:
    """All oscillators in the same phase (the translationally symmetric,
    bulk-synchronous lock-step state)."""
    if n < 1:
        raise ValueError("n must be positive")
    return np.full(n, float(phase))


def perturbed(n: int, rank: int = 0, offset: float = -0.5) -> np.ndarray:
    """Synchronised except one rank displaced by ``offset`` radians.

    A negative offset puts the rank *behind* — the phase-space picture
    of a one-off delay that has just finished.
    """
    theta = synchronized(n)
    if not (0 <= rank < n):
        raise ValueError(f"rank {rank} out of range for n={n}")
    theta[rank] += float(offset)
    return theta


def random_phases(n: int, spread: float = 2.0 * np.pi,
                  rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Uniform random phases in ``[0, spread)`` (desynchronised start)."""
    if n < 1:
        raise ValueError("n must be positive")
    if spread <= 0:
        raise ValueError("spread must be positive")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return rng.uniform(0.0, spread, size=n)


def splayed(n: int, gap: float) -> np.ndarray:
    """Linear phase ramp ``theta_i = i * gap``.

    With ``gap = 2*sigma/3`` (the bottleneck potential's stable gap)
    this is the asymptotic computational-wavefront state; starting from
    it tests the *stability* of the desynchronised equilibrium.
    """
    if n < 1:
        raise ValueError("n must be positive")
    return np.arange(n, dtype=float) * float(gap)


def wavefront(n: int, gap: float, noise: float = 0.0,
              rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Splayed state plus optional Gaussian jitter on each phase."""
    theta = splayed(n, gap)
    if noise > 0.0:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        theta = theta + rng.normal(0.0, noise, size=n)
    return theta


def initial_from_name(name: str, n: int, **kwargs) -> np.ndarray:
    """Factory used by the CLI."""
    key = name.strip().lower()
    if key in ("sync", "synchronized", "synchronised"):
        return synchronized(n, **kwargs)
    if key in ("perturbed", "delayed"):
        return perturbed(n, **kwargs)
    if key in ("random", "desync", "desynchronized"):
        return random_phases(n, **kwargs)
    if key in ("splayed", "ramp", "wavefront"):
        return splayed(n, **kwargs) if "gap" in kwargs else splayed(n, gap=0.1)
    raise ValueError(f"unknown initial condition {name!r}")
