"""Noise processes of the physical oscillator model (paper Sec. 3.1).

Eq. (2) contains two noise channels:

* **Process-local noise** ``zeta_i(t)`` — enters the denominator of the
  intrinsic frequency ``2*pi / (t_comp + t_comm + zeta_i(t))``; it models
  system noise (OS jitter, clock variation) and, with a static
  realisation, load imbalance.  Implemented as piecewise-constant
  processes that are *frozen per realisation*: an adaptive solver may
  evaluate the RHS at any time, repeatedly, so the noise must be a
  deterministic function of time once drawn.
* **Interaction noise** ``tau_ij(t)`` — random communication delays that
  retard the partner phase, ``theta_j(t - tau_ij(t))``; realised as a
  per-edge piecewise-constant delay field.

**One-off delays** (the paper's injected extra workload that launches an
idle wave) are modelled exactly: a process that performs extra work of
duration ``delay`` seconds inside a window ``W`` accumulates the phase
deficit ``omega * delay``.  Solving for the additional period gives
``zeta = delay * T / (W - delay)`` (and a fully stalled process,
``W == delay``, corresponds to ``zeta = inf``, i.e. frequency zero
during the window).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "ZetaProcess",
    "LocalNoise",
    "NoNoise",
    "GaussianJitter",
    "UniformJitter",
    "LognormalJitter",
    "StaticLoadImbalance",
    "CompositeNoise",
    "OneOffDelay",
    "DelaySchedule",
    "InteractionNoise",
    "NoInteractionNoise",
    "ConstantInteractionNoise",
    "RandomInteractionNoise",
    "TauField",
    "ZeroTauField",
]


# ======================================================================
# Process-local noise zeta_i(t)
# ======================================================================
class ZetaProcess:
    """A frozen realisation of the per-process noise ``zeta_i(t)``.

    Piecewise-constant in time with refresh interval ``dt``; values
    beyond the precomputed horizon clamp to the last interval (the
    simulation driver always realises over the full span).

    Parameters
    ----------
    values:
        Array of shape ``(n_intervals, n)`` — one row per refresh
        interval, one column per process.
    dt:
        Refresh interval (> 0).
    t0:
        Start time of interval 0.
    """

    def __init__(self, values: np.ndarray, dt: float, t0: float = 0.0) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError("values must be 2-D (n_intervals, n)")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.values = values
        self.dt = float(dt)
        self.t0 = float(t0)

    @property
    def n(self) -> int:
        """Number of processes."""
        return int(self.values.shape[1])

    def __call__(self, t: float) -> np.ndarray:
        """Noise vector at time ``t`` (shape ``(n,)``)."""
        k = int(np.floor((t - self.t0) / self.dt))
        k = min(max(k, 0), self.values.shape[0] - 1)
        return self.values[k]

    def max_abs(self) -> float:
        """Largest |zeta| of the realisation (for stability checks)."""
        vals = self.values[np.isfinite(self.values)]
        return float(np.abs(vals).max()) if vals.size else 0.0


class LocalNoise(ABC):
    """Specification of a process-local noise channel.

    ``realize`` draws a frozen :class:`ZetaProcess` for a concrete
    simulation (``n`` processes, time span ``[0, t_end]``).
    """

    @abstractmethod
    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> ZetaProcess:
        """Draw a realisation covering ``[0, t_end]``."""

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {"type": type(self).__name__}


def _n_intervals(t_end: float, dt: float) -> int:
    return max(1, int(np.ceil(t_end / dt + 1e-12)))


class NoNoise(LocalNoise):
    """The silent system: ``zeta_i(t) = 0``."""

    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> ZetaProcess:
        return ZetaProcess(np.zeros((1, n)), dt=max(t_end, 1.0))


@dataclass
class GaussianJitter(LocalNoise):
    """Zero-mean Gaussian period jitter, refreshed every ``refresh`` s.

    ``std`` is in seconds (same unit as ``t_comp``/``t_comm``).  Values
    are clipped at ``clip_sigmas`` standard deviations so that the period
    ``T + zeta`` cannot accidentally become non-positive for reasonable
    parameters (the model additionally guards the denominator).
    """

    std: float
    refresh: float = 0.1
    clip_sigmas: float = 4.0

    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> ZetaProcess:
        if self.std < 0:
            raise ValueError("std must be non-negative")
        m = _n_intervals(t_end, self.refresh)
        vals = rng.normal(0.0, self.std, size=(m, n))
        lim = self.clip_sigmas * self.std
        np.clip(vals, -lim, lim, out=vals)
        return ZetaProcess(vals, dt=self.refresh)

    def describe(self) -> dict:
        return {"type": "GaussianJitter", "std": self.std,
                "refresh": self.refresh}


@dataclass
class UniformJitter(LocalNoise):
    """Uniform period jitter on ``[-half_width, +half_width]`` seconds."""

    half_width: float
    refresh: float = 0.1

    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> ZetaProcess:
        if self.half_width < 0:
            raise ValueError("half_width must be non-negative")
        m = _n_intervals(t_end, self.refresh)
        vals = rng.uniform(-self.half_width, self.half_width, size=(m, n))
        return ZetaProcess(vals, dt=self.refresh)

    def describe(self) -> dict:
        return {"type": "UniformJitter", "half_width": self.half_width,
                "refresh": self.refresh}


@dataclass
class LognormalJitter(LocalNoise):
    """One-sided (slowdown-only) noise: ``zeta >= 0`` lognormal.

    OS noise only ever *delays* work, so a one-sided distribution is the
    physically faithful choice; ``median`` and ``sigma`` parameterise the
    underlying lognormal.
    """

    median: float
    sigma: float = 1.0
    refresh: float = 0.1

    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> ZetaProcess:
        if self.median < 0:
            raise ValueError("median must be non-negative")
        m = _n_intervals(t_end, self.refresh)
        if self.median == 0.0:
            vals = np.zeros((m, n))
        else:
            vals = rng.lognormal(np.log(self.median), self.sigma, size=(m, n))
        return ZetaProcess(vals, dt=self.refresh)

    def describe(self) -> dict:
        return {"type": "LognormalJitter", "median": self.median,
                "sigma": self.sigma, "refresh": self.refresh}


@dataclass
class StaticLoadImbalance(LocalNoise):
    """Time-independent per-rank period offsets (load imbalance).

    The paper notes the local-noise channel "can also serve to model
    load imbalance" — a static realisation of ``zeta_i``.

    Parameters
    ----------
    offsets:
        Either an explicit per-rank sequence (length must match ``n`` at
        realisation time) or ``None`` with ``amplitude`` to draw one
        static uniform sample per rank.
    amplitude:
        Half-width for the drawn offsets when ``offsets is None``.
    """

    offsets: Sequence[float] | None = None
    amplitude: float = 0.0

    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> ZetaProcess:
        if self.offsets is not None:
            off = np.asarray(self.offsets, dtype=float)
            if off.shape != (n,):
                raise ValueError(
                    f"offsets has shape {off.shape}, expected ({n},)"
                )
        else:
            off = rng.uniform(-self.amplitude, self.amplitude, size=n)
        return ZetaProcess(off[None, :], dt=max(t_end, 1.0))

    def describe(self) -> dict:
        return {"type": "StaticLoadImbalance", "amplitude": self.amplitude,
                "explicit": self.offsets is not None}


@dataclass
class CompositeNoise(LocalNoise):
    """Sum of several local-noise channels (e.g. imbalance + jitter)."""

    parts: Sequence[LocalNoise] = field(default_factory=tuple)

    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> ZetaProcess:
        if not self.parts:
            return NoNoise().realize(n, t_end, rng)
        procs = [p.realize(n, t_end, rng) for p in self.parts]
        # Common refresh grid: the finest dt among parts.
        dt = min(p.dt for p in procs)
        m = _n_intervals(t_end, dt)
        vals = np.zeros((m, n))
        for p in procs:
            for k in range(m):
                vals[k] += p((k + 0.5) * dt)
        return ZetaProcess(vals, dt=dt)

    def describe(self) -> dict:
        return {"type": "CompositeNoise",
                "parts": [p.describe() for p in self.parts]}


# ======================================================================
# One-off delays (idle-wave injection)
# ======================================================================
@dataclass(frozen=True)
class OneOffDelay:
    """A singular extra-workload event on one rank (paper Sec. 5.1).

    Parameters
    ----------
    rank:
        Affected process index.
    t_start:
        When the extra work begins (seconds).
    delay:
        Extra work duration in seconds — the phase deficit is
        ``omega * delay``.
    window:
        Over how long the slowdown is spread.  ``None`` (default) means
        the process is completely stalled for ``delay`` seconds
        (``window == delay``); a larger window models partial slowdown.
    """

    rank: int
    t_start: float
    delay: float
    window: float | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be non-negative")
        if self.delay <= 0:
            raise ValueError("delay must be positive")
        if self.window is not None and self.window < self.delay:
            raise ValueError("window must be >= delay")

    @property
    def effective_window(self) -> float:
        """Slowdown window (defaults to a full stall of length delay)."""
        return self.delay if self.window is None else self.window

    def zeta_extra(self, period: float) -> float:
        """Additional period during the window for phase-exact injection.

        Derived from equating the accumulated phase deficit with
        ``omega * delay``; infinite for a full stall.
        """
        w = self.effective_window
        if w <= self.delay * (1.0 + 1e-12):
            return np.inf
        return self.delay * period / (w - self.delay)

    @property
    def t_end(self) -> float:
        """End of the slowdown window."""
        return self.t_start + self.effective_window


class DelaySchedule:
    """A set of one-off delays exposed as a time-dependent zeta term.

    The schedule needs the unperturbed period ``T = t_comp + t_comm`` to
    convert each delay into the exact additional-period value.
    """

    def __init__(self, delays: Sequence[OneOffDelay], period: float) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.delays = tuple(delays)
        self.period = float(period)
        self._extras = [d.zeta_extra(period) for d in self.delays]

    def __call__(self, t: float, n: int) -> np.ndarray:
        """Additional zeta vector at time ``t`` for ``n`` processes."""
        out = np.zeros(n)
        for d, extra in zip(self.delays, self._extras):
            if d.rank < n and d.t_start <= t < d.t_end:
                out[d.rank] += extra
        return out

    def max_rank(self) -> int:
        """Largest rank index referenced (for validation)."""
        return max((d.rank for d in self.delays), default=-1)

    def describe(self) -> list[dict]:
        """Metadata used by exporters."""
        return [
            {"rank": d.rank, "t_start": d.t_start, "delay": d.delay,
             "window": d.effective_window}
            for d in self.delays
        ]


# ======================================================================
# Interaction noise tau_ij(t)
# ======================================================================
class TauField:
    """Frozen realisation of the interaction delays ``tau_ij(t)``.

    Piecewise-constant per-edge delays; shape per interval is ``(n, n)``.
    """

    def __init__(self, values: np.ndarray, dt: float) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 3 or values.shape[1] != values.shape[2]:
            raise ValueError("values must have shape (n_intervals, n, n)")
        if np.any(values < 0):
            raise ValueError("delays must be non-negative")
        self.values = values
        self.dt = float(dt)
        self._is_zero = bool(np.all(values == 0.0))

    @property
    def n(self) -> int:
        """Number of processes."""
        return int(self.values.shape[1])

    def __call__(self, t: float) -> np.ndarray:
        """Delay matrix at time ``t`` (shape ``(n, n)``)."""
        k = int(np.floor(t / self.dt))
        k = min(max(k, 0), self.values.shape[0] - 1)
        return self.values[k]

    def max_delay(self) -> float:
        """Upper bound on any delay (bounds the DDE history horizon)."""
        return float(self.values.max()) if self.values.size else 0.0

    @property
    def is_zero(self) -> bool:
        """True when the field never delays (pure-ODE fast path).

        Cached at construction: the RHS backends consult this on every
        evaluation, and the field is immutable once realised.
        """
        return self._is_zero


class ZeroTauField(TauField):
    """A delay-free field that never materialises its ``(n, n)`` zeros.

    ``NoInteractionNoise`` used to realise a literal ``(1, n, n)`` zero
    array — 80 GB at N = 1e5.  Every consumer checks :attr:`is_zero`
    before touching the values, so the delay-free case only needs the
    metadata; the dense zero matrix is produced on demand in the
    (never-taken) ``__call__`` path.
    """

    def __init__(self, n: int, dt: float) -> None:
        super().__init__(np.zeros((1, 0, 0)), dt)
        self._n_override = int(n)

    @property
    def n(self) -> int:
        return self._n_override

    def __call__(self, t: float) -> np.ndarray:
        return np.zeros((self._n_override, self._n_override))


class InteractionNoise(ABC):
    """Specification of the interaction-delay channel ``tau_ij(t)``."""

    @abstractmethod
    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> TauField:
        """Draw a realisation covering ``[0, t_end]``."""

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {"type": type(self).__name__}


class NoInteractionNoise(InteractionNoise):
    """tau_ij = 0: the pure-ODE model."""

    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> TauField:
        return ZeroTauField(n, dt=max(t_end, 1.0))


@dataclass
class ConstantInteractionNoise(InteractionNoise):
    """Uniform constant delay ``tau`` on every edge."""

    tau: float

    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> TauField:
        if self.tau < 0:
            raise ValueError("tau must be non-negative")
        return TauField(np.full((1, n, n), self.tau), dt=max(t_end, 1.0))

    def describe(self) -> dict:
        return {"type": "ConstantInteractionNoise", "tau": self.tau}


@dataclass
class RandomInteractionNoise(InteractionNoise):
    """Per-edge uniform random delays in ``[lo, hi]``, refreshed.

    Models varying communication time (network contention); the paper's
    ``tau_ij(t)`` with a uniform distribution.
    """

    lo: float = 0.0
    hi: float = 0.0
    refresh: float = 1.0

    def realize(self, n: int, t_end: float,
                rng: np.random.Generator) -> TauField:
        if self.lo < 0 or self.hi < self.lo:
            raise ValueError("need 0 <= lo <= hi")
        m = _n_intervals(t_end, self.refresh)
        vals = rng.uniform(self.lo, self.hi, size=(m, n, n))
        return TauField(vals, dt=self.refresh)

    def describe(self) -> dict:
        return {"type": "RandomInteractionNoise", "lo": self.lo,
                "hi": self.hi, "refresh": self.refresh}
