"""Communication-topology matrices for the oscillator model.

The topology matrix ``T`` of Eq. (2) encodes which processes exchange
messages: ``T[i, j] = 1`` iff process *i* has a communication dependency
on process *j*.  For the bulk-synchronous point-to-point codes of the
paper, the topology derives from a *distance set* ``d``: process *i*
communicates with ``i + d_k`` for each ``d_k`` in the set (e.g. the
paper's ``d = ±1`` nearest-neighbour halo exchange and ``d = ±1, -2``).

Because an ``MPI_Send``/``MPI_Irecv`` pair makes *both* endpoints wait on
each other (the sender cannot complete a rendezvous send before the
receive is posted, the receiver cannot proceed before the data arrived),
the induced oscillator coupling is symmetrised by default: if *i* talks
to *j* then ``T[i,j] = T[j,i] = 1``.  Directed topologies remain
available for asymmetric-dependency studies.

The module also computes the paper's coupling parameter kappa: the sum
over communication distances, or the *longest* distance only when all
outstanding requests are grouped in a single ``MPI_Waitall`` (Sec. 3.1,
after ref. [4]).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "Topology",
    "ring",
    "ring_edges",
    "chain",
    "all_to_all",
    "grid2d",
    "torus2d",
    "torus2d_edges",
    "random_topology",
    "from_edges",
    "from_networkx",
    "dependency_topology",
]

#: dense materialisations above this many matrix entries raise instead of
#: silently allocating tens of gigabytes (N = 1e5 would need 80 GB)
_DENSE_LIMIT_ENTRIES = 100_000_000


class Topology:
    """A named 0/1 coupling structure plus the metadata the model needs.

    Two storage modes share one interface:

    * **dense** (the default constructor): backed by an ``(N, N)`` 0/1
      matrix, exactly as before.
    * **edge-backed** (:meth:`from_edge_arrays`, used by the large-N
      builders :func:`ring_edges` / :func:`torus2d_edges`): backed by the
      row-major edge list only.  The ``matrix`` property densifies
      lazily on first access and refuses above ``~1e8`` entries, so the
      O(E) kernels can run at N >= 1e5 where a dense matrix would need
      tens of gigabytes.

    Attributes
    ----------
    matrix:
        ``(N, N)`` array of 0/1 floats with zero diagonal (lazily
        materialised for edge-backed topologies).
    distances:
        The distance multiset the topology was generated from (empty for
        generic graphs); used for the kappa rules.
    name:
        Identifier for reports.
    periodic:
        Whether rank indices wrap around (ring vs. open chain).
    """

    def __init__(self, matrix: np.ndarray | None = None,
                 distances: Iterable[int] = (), name: str = "custom",
                 periodic: bool = True) -> None:
        self.distances = tuple(int(d) for d in distances)
        self.name = str(name)
        self.periodic = bool(periodic)
        self._edge_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._csr_cache: tuple[np.ndarray, np.ndarray] | None = None
        if matrix is None:
            # Populated by from_edge_arrays; bare Topology() is invalid.
            self._matrix: np.ndarray | None = None
            self._n = 0
            return
        m = np.asarray(matrix, dtype=float)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"topology matrix must be square, got {m.shape}")
        if not np.isin(m, (0.0, 1.0)).all():
            raise ValueError("topology matrix entries must be 0 or 1")
        if np.any(np.diag(m) != 0):
            raise ValueError("topology matrix must have a zero diagonal "
                             "(no self-coupling)")
        self._matrix = m
        self._n = int(m.shape[0])

    @classmethod
    def from_edge_arrays(cls, n: int, rows: np.ndarray, cols: np.ndarray, *,
                         distances: Iterable[int] = (), name: str = "custom",
                         periodic: bool = True) -> "Topology":
        """Build an edge-backed topology without a dense matrix.

        ``rows``/``cols`` are directed-edge endpoint arrays; they are
        validated, deduplicated, and sorted row-major so the kernels see
        the exact edge order a dense ``np.nonzero`` would produce.
        """
        n = int(n)
        if n < 1:
            raise ValueError("need at least one process")
        rows = np.asarray(rows, dtype=np.intp).ravel()
        cols = np.asarray(cols, dtype=np.intp).ravel()
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have equal length")
        if rows.size and (rows.min() < 0 or rows.max() >= n
                          or cols.min() < 0 or cols.max() >= n):
            raise ValueError(f"edge endpoints out of range for n={n}")
        if np.any(rows == cols):
            raise ValueError("topology matrix must have a zero diagonal "
                             "(no self-coupling)")
        flat = np.unique(rows * n + cols)      # dedupe + row-major sort
        rows = (flat // n).astype(np.intp)
        cols = (flat % n).astype(np.intp)
        rows.setflags(write=False)
        cols.setflags(write=False)
        topo = cls(matrix=None, distances=distances, name=name,
                   periodic=periodic)
        topo._n = n
        topo._edge_cache = (rows, cols)
        return topo

    def __repr__(self) -> str:
        mode = "dense" if self._matrix is not None else "edges"
        return (f"Topology(name={self.name!r}, n={self.n}, "
                f"n_edges={self.n_edges}, {mode})")

    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The dense ``(N, N)`` coupling matrix (lazy for edge-backed)."""
        if self._matrix is None:
            n = self._n
            if self._edge_cache is None:
                raise ValueError("topology has neither a matrix nor edges")
            if n * n > _DENSE_LIMIT_ENTRIES:
                raise MemoryError(
                    f"refusing to densify {self.name!r} (N={n}: the matrix "
                    f"would hold {n * n:.2e} entries); use the edge-native "
                    "consumers (edge_list/csr) at this scale"
                )
            rows, cols = self._edge_cache
            m = np.zeros((n, n))
            m[rows, cols] = 1.0
            self._matrix = m
        return self._matrix

    @property
    def n(self) -> int:
        """Number of oscillators/processes."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of directed couplings (nonzero entries)."""
        return int(self.edge_list()[0].size)

    @property
    def is_symmetric(self) -> bool:
        """True if coupling is bidirectional everywhere."""
        rows, cols = self.edge_list()
        fwd = rows * self.n + cols
        rev = np.sort(cols * self.n + rows)
        return bool(np.array_equal(fwd, rev))

    @property
    def density(self) -> float:
        """Edge fraction ``E / N^2`` — drives the auto backend choice."""
        n = self.n
        return float(self.n_edges) / float(n * n) if n else 0.0

    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """Directed edges as ``(rows, cols)`` index arrays (cached).

        Row-major order (sorted by row, then column), which makes the
        sparse backend's segment sums accumulate contributions in the
        same order as the dense row sum.  The arrays are read-only views
        shared by every compiled backend — do not mutate them.
        """
        if self._edge_cache is None:
            rows, cols = np.nonzero(self.matrix)
            rows.setflags(write=False)
            cols.setflags(write=False)
            self._edge_cache = (rows, cols)
        return self._edge_cache

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR view ``(indptr, indices)`` of the coupling matrix (cached).

        ``indices[indptr[i]:indptr[i+1]]`` are the partners of oscillator
        ``i`` — the compressed form of :meth:`neighbors` for kernels that
        iterate rows.
        """
        if self._csr_cache is None:
            rows, cols = self.edge_list()
            counts = np.bincount(rows, minlength=self.n)
            indptr = np.concatenate(([0], np.cumsum(counts)))
            indptr.setflags(write=False)
            self._csr_cache = (indptr, cols)
        return self._csr_cache

    def degree(self) -> np.ndarray:
        """Out-degree (number of partners) of each oscillator."""
        rows, _ = self.edge_list()
        return np.bincount(rows, minlength=self.n).astype(float)

    def neighbors(self, i: int) -> np.ndarray:
        """Indices of the partners of oscillator ``i``."""
        indptr, indices = self.csr()
        return indices[indptr[i]:indptr[i + 1]]

    # ------------------------------------------------------------------
    # kappa rules (paper Sec. 3.1)
    # ------------------------------------------------------------------
    def kappa(self, waitall_grouped: bool = False) -> float:
        """Coupling distance parameter kappa.

        ``kappa`` is the sum over all communication distances; if the
        outstanding non-blocking requests of all partners are grouped in
        the same ``MPI_Waitall``, kappa collapses to the longest distance
        only (paper Sec. 3.1, after [4]).

        For topologies not built from a distance set, the per-rank
        neighbour index offsets are used as distances (ring metric when
        ``periodic``).
        """
        dists = self.distance_multiset()
        if len(dists) == 0:
            return 0.0
        mags = np.abs(np.asarray(dists, dtype=float))
        if waitall_grouped:
            return float(mags.max())
        return float(mags.sum())

    def distance_multiset(self) -> tuple[int, ...]:
        """Distances underlying this topology.

        Returns the generating distance set when known, otherwise
        extracts per-row index offsets from the matrix (using the ring
        metric when periodic) and returns the multiset of the first
        row's offsets — valid for translationally invariant topologies;
        for irregular graphs the mean row is used.
        """
        if self.distances:
            return self.distances
        n = self.n
        if n == 0:
            return ()
        offsets: list[int] = []
        row = self.neighbors(0)
        for j in row:
            off = int(j)
            if self.periodic and off > n // 2:
                off -= n
            offsets.append(off)
        return tuple(sorted(offsets))

    # ------------------------------------------------------------------
    def laplacian(self) -> np.ndarray:
        """Graph Laplacian ``L = D - T`` (symmetrised first).

        The spectral gap of ``L`` controls the linearised
        resynchronisation rate of attractive potentials; tests use it
        against the :class:`~repro.core.potentials.LinearPotential`.
        """
        m = 0.5 * (self.matrix + self.matrix.T)
        return np.diag(m.sum(axis=1)) - m

    def spectral_gap(self) -> float:
        """Second-smallest Laplacian eigenvalue (algebraic connectivity)."""
        eig = np.linalg.eigvalsh(self.laplacian())
        return float(eig[1]) if len(eig) > 1 else 0.0

    def to_networkx(self) -> nx.DiGraph:
        """Export as a directed networkx graph."""
        g = nx.DiGraph()
        g.add_nodes_from(range(self.n))
        rows, cols = self.edge_list()
        g.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return g

    def is_connected(self) -> bool:
        """Weak connectivity of the coupling graph."""
        return nx.is_weakly_connected(self.to_networkx()) if self.n > 0 else True

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {
            "name": self.name,
            "n": self.n,
            "distances": list(self.distances),
            "periodic": self.periodic,
            "n_edges": self.n_edges,
            "density": self.density,
            "kappa_sum": self.kappa(waitall_grouped=False),
            "kappa_max": self.kappa(waitall_grouped=True),
        }


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _normalise_distances(distances: Iterable[int]) -> tuple[int, ...]:
    dists = tuple(int(d) for d in distances)
    if len(dists) == 0:
        raise ValueError("distance set must not be empty")
    if any(d == 0 for d in dists):
        raise ValueError("distance 0 (self-communication) is not allowed")
    return dists


def ring(n: int, distances: Iterable[int] = (1, -1), *,
         symmetrize: bool = True) -> Topology:
    """Periodic 1-D process chain with the given distance set.

    ``ring(N, (1, -1))`` is the paper's ``d = ±1`` halo exchange;
    ``ring(N, (1, -1, -2))`` its ``d = ±1, -2`` variant.  With
    ``symmetrize=True`` (default) every send implies the reverse
    dependency, mirroring two-sided MPI semantics.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    dists = _normalise_distances(distances)
    m = np.zeros((n, n), dtype=float)
    for i in range(n):
        for d in dists:
            j = (i + d) % n
            m[i, j] = 1.0
            if symmetrize:
                m[j, i] = 1.0
    np.fill_diagonal(m, 0.0)
    return Topology(matrix=m, distances=dists,
                    name=f"ring{sorted(set(dists))}", periodic=True)


def ring_edges(n: int, distances: Iterable[int] = (1, -1), *,
               symmetrize: bool = True) -> Topology:
    """Edge-backed :func:`ring` for large N.

    Builds the identical edge set (and name/metadata) as ``ring(n,
    distances)`` directly as vectorised index arrays — O(E) time and
    memory instead of the O(N^2) dense matrix, which makes N >= 1e5
    rings tractable for the edge-list and fused kernels.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    dists = _normalise_distances(distances)
    dset = set(dists)
    if symmetrize:
        dset |= {-d for d in dists}
    i = np.arange(n, dtype=np.intp)
    rows_parts, cols_parts = [], []
    for d in sorted(dset):
        j = (i + d) % n
        keep = j != i                       # distances that are multiples of n
        rows_parts.append(i[keep])
        cols_parts.append(j[keep])
    return Topology.from_edge_arrays(
        n, np.concatenate(rows_parts), np.concatenate(cols_parts),
        distances=dists, name=f"ring{sorted(set(dists))}", periodic=True)


def chain(n: int, distances: Iterable[int] = (1, -1), *,
          symmetrize: bool = True) -> Topology:
    """Open (non-periodic) 1-D chain: ranks at the ends have fewer partners.

    Matches an MPI program without periodic boundary conditions.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    dists = _normalise_distances(distances)
    m = np.zeros((n, n), dtype=float)
    for i in range(n):
        for d in dists:
            j = i + d
            if 0 <= j < n:
                m[i, j] = 1.0
                if symmetrize:
                    m[j, i] = 1.0
    np.fill_diagonal(m, 0.0)
    return Topology(matrix=m, distances=dists,
                    name=f"chain{sorted(set(dists))}", periodic=False)


def all_to_all(n: int) -> Topology:
    """Fully connected topology — the plain Kuramoto pattern.

    The paper rejects this for parallel programs (it acts like a global
    barrier per cycle); kept as the baseline comparator.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    m = np.ones((n, n), dtype=float)
    np.fill_diagonal(m, 0.0)
    return Topology(matrix=m, distances=(), name="all-to-all", periodic=True)


def grid2d(nx_: int, ny_: int, *, periodic: bool = False) -> Topology:
    """2-D Cartesian 5-point halo topology (row-major rank order).

    Models ``MPI_Cart_create``-style domain decompositions.
    """
    if nx_ < 1 or ny_ < 1 or nx_ * ny_ < 2:
        raise ValueError("grid must contain at least two processes")
    n = nx_ * ny_
    m = np.zeros((n, n), dtype=float)

    def rank(ix: int, iy: int) -> int:
        return iy * nx_ + ix

    for iy in range(ny_):
        for ix in range(nx_):
            i = rank(ix, iy)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                jx, jy = ix + dx, iy + dy
                if periodic:
                    jx %= nx_
                    jy %= ny_
                elif not (0 <= jx < nx_ and 0 <= jy < ny_):
                    continue
                j = rank(jx, jy)
                if j != i:
                    m[i, j] = 1.0
    name = f"torus2d[{nx_}x{ny_}]" if periodic else f"grid2d[{nx_}x{ny_}]"
    return Topology(matrix=m, distances=(), name=name, periodic=periodic)


def torus2d(nx_: int, ny_: int) -> Topology:
    """Periodic 2-D grid (convenience wrapper)."""
    return grid2d(nx_, ny_, periodic=True)


def torus2d_edges(nx_: int, ny_: int) -> Topology:
    """Edge-backed :func:`torus2d` for large N (same edge set and name).

    The 5-point periodic halo as vectorised index arrays: rank
    ``iy*nx + ix`` couples to its four wrapped Cartesian neighbours.
    """
    if nx_ < 1 or ny_ < 1 or nx_ * ny_ < 2:
        raise ValueError("grid must contain at least two processes")
    n = nx_ * ny_
    r = np.arange(n, dtype=np.intp)
    ix, iy = r % nx_, r // nx_
    rows_parts, cols_parts = [], []
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        j = ((iy + dy) % ny_) * nx_ + (ix + dx) % nx_
        keep = j != r                       # 1-wide axes wrap onto self
        rows_parts.append(r[keep])
        cols_parts.append(j[keep])
    return Topology.from_edge_arrays(
        n, np.concatenate(rows_parts), np.concatenate(cols_parts),
        distances=(), name=f"torus2d[{nx_}x{ny_}]", periodic=True)


def random_topology(n: int, p: float, *, rng: np.random.Generator | None = None,
                    symmetrize: bool = True, ensure_connected: bool = True,
                    max_tries: int = 100) -> Topology:
    """Erdős–Rényi coupling graph with edge probability ``p``.

    Used for noise/topology robustness studies (paper Sec. 6 outlook).
    ``ensure_connected`` redraws until weakly connected (raises after
    ``max_tries`` failures).
    """
    if n < 2:
        raise ValueError("need at least two processes")
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must be in [0, 1]")
    if rng is None:
        rng = np.random.default_rng()
    for _ in range(max_tries):
        m = (rng.random((n, n)) < p).astype(float)
        np.fill_diagonal(m, 0.0)
        if symmetrize:
            m = np.maximum(m, m.T)
        topo = Topology(matrix=m, distances=(), name=f"er[p={p}]", periodic=False)
        if not ensure_connected or topo.is_connected():
            return topo
    raise RuntimeError(
        f"could not draw a connected topology in {max_tries} tries (n={n}, p={p})"
    )


def from_edges(n: int, edges: Sequence[tuple[int, int]], *,
               symmetrize: bool = True, name: str = "edges") -> Topology:
    """Build a topology from an explicit edge list."""
    m = np.zeros((n, n), dtype=float)
    for i, j in edges:
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"edge ({i}, {j}) out of range for n={n}")
        if i == j:
            raise ValueError("self-edges are not allowed")
        m[i, j] = 1.0
        if symmetrize:
            m[j, i] = 1.0
    return Topology(matrix=m, distances=(), name=name, periodic=False)


def from_networkx(graph: nx.Graph | nx.DiGraph, *, name: str | None = None) -> Topology:
    """Build a topology from a networkx graph (nodes relabelled 0..N-1)."""
    nodes = sorted(graph.nodes())
    index = {v: k for k, v in enumerate(nodes)}
    n = len(nodes)
    m = np.zeros((n, n), dtype=float)
    for u, v in graph.edges():
        m[index[u], index[v]] = 1.0
        if not graph.is_directed():
            m[index[v], index[u]] = 1.0
    return Topology(matrix=m, distances=(),
                    name=name or f"nx[{graph.__class__.__name__}]",
                    periodic=False)


def dependency_topology(n: int, send_distances: Iterable[int], *,
                        rendezvous: bool = False,
                        periodic: bool = True) -> Topology:
    """Directed dependency matrix induced by an MPI send-distance set.

    With *eager* sends only the **receiver** waits: rank ``i`` receives
    from ``i - d`` for each send distance ``d``, so ``T[i, i-d] = 1``
    (its phase rate depends on those partners) and nothing more.  With
    *rendezvous* sends the sender also waits for the receiver to post,
    adding the reverse edges ``T[i, i+d] = 1`` — which symmetrises the
    matrix for symmetric distance sets and strictly enlarges it for
    asymmetric ones (e.g. the paper's ``d = ±1, -2``).

    This is the faithful fine-grained alternative to the symmetric
    :func:`ring` builder (the paper's "connection between oscillators i
    and j"); experiments use :func:`ring`, ablations compare both.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    dists = _normalise_distances(send_distances)
    m = np.zeros((n, n), dtype=float)
    for i in range(n):
        for d in dists:
            j = i - d          # we receive from i - d
            if periodic:
                m[i, j % n] = 1.0
            elif 0 <= j < n:
                m[i, j] = 1.0
            if rendezvous:
                k = i + d      # our send blocks on i + d
                if periodic:
                    m[i, k % n] = 1.0
                elif 0 <= k < n:
                    m[i, k] = 1.0
    np.fill_diagonal(m, 0.0)
    proto = "rdv" if rendezvous else "eager"
    return Topology(matrix=m, distances=dists,
                    name=f"dep[{proto}]{sorted(set(dists))}",
                    periodic=periodic)
