"""Communication-topology matrices for the oscillator model.

The topology matrix ``T`` of Eq. (2) encodes which processes exchange
messages: ``T[i, j] = 1`` iff process *i* has a communication dependency
on process *j*.  For the bulk-synchronous point-to-point codes of the
paper, the topology derives from a *distance set* ``d``: process *i*
communicates with ``i + d_k`` for each ``d_k`` in the set (e.g. the
paper's ``d = ±1`` nearest-neighbour halo exchange and ``d = ±1, -2``).

Because an ``MPI_Send``/``MPI_Irecv`` pair makes *both* endpoints wait on
each other (the sender cannot complete a rendezvous send before the
receive is posted, the receiver cannot proceed before the data arrived),
the induced oscillator coupling is symmetrised by default: if *i* talks
to *j* then ``T[i,j] = T[j,i] = 1``.  Directed topologies remain
available for asymmetric-dependency studies.

The module also computes the paper's coupling parameter kappa: the sum
over communication distances, or the *longest* distance only when all
outstanding requests are grouped in a single ``MPI_Waitall`` (Sec. 3.1,
after ref. [4]).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "Topology",
    "ring",
    "ring_edges",
    "chain",
    "all_to_all",
    "grid2d",
    "torus2d",
    "torus2d_edges",
    "fat_tree",
    "dragonfly",
    "hypercube",
    "random_topology",
    "from_edges",
    "from_networkx",
    "dependency_topology",
    "TopologyKind",
    "register_topology",
    "topology_kinds",
    "make_topology",
    "topology_n_from_spec",
]

#: dense materialisations above this many matrix entries raise instead of
#: silently allocating tens of gigabytes (N = 1e5 would need 80 GB)
_DENSE_LIMIT_ENTRIES = 100_000_000


class Topology:
    """A named 0/1 coupling structure plus the metadata the model needs.

    Two storage modes share one interface:

    * **dense** (the default constructor): backed by an ``(N, N)`` 0/1
      matrix, exactly as before.
    * **edge-backed** (:meth:`from_edge_arrays`, used by the large-N
      builders :func:`ring_edges` / :func:`torus2d_edges`): backed by the
      row-major edge list only.  The ``matrix`` property densifies
      lazily on first access and refuses above ``~1e8`` entries, so the
      O(E) kernels can run at N >= 1e5 where a dense matrix would need
      tens of gigabytes.

    Attributes
    ----------
    matrix:
        ``(N, N)`` array of 0/1 floats with zero diagonal (lazily
        materialised for edge-backed topologies).
    distances:
        The distance multiset the topology was generated from (empty for
        generic graphs); used for the kappa rules.
    name:
        Identifier for reports.
    periodic:
        Whether rank indices wrap around (ring vs. open chain).
    """

    def __init__(self, matrix: np.ndarray | None = None,
                 distances: Iterable[int] = (), name: str = "custom",
                 periodic: bool = True) -> None:
        self.distances = tuple(int(d) for d in distances)
        self.name = str(name)
        self.periodic = bool(periodic)
        self._edge_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._csr_cache: tuple[np.ndarray, np.ndarray] | None = None
        if matrix is None:
            # Populated by from_edge_arrays; bare Topology() is invalid.
            self._matrix: np.ndarray | None = None
            self._n = 0
            return
        m = np.asarray(matrix, dtype=float)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"topology matrix must be square, got {m.shape}")
        if not np.isin(m, (0.0, 1.0)).all():
            raise ValueError("topology matrix entries must be 0 or 1")
        if np.any(np.diag(m) != 0):
            raise ValueError("topology matrix must have a zero diagonal "
                             "(no self-coupling)")
        self._matrix = m
        self._n = int(m.shape[0])

    @classmethod
    def from_edge_arrays(cls, n: int, rows: np.ndarray, cols: np.ndarray, *,
                         distances: Iterable[int] = (), name: str = "custom",
                         periodic: bool = True) -> "Topology":
        """Build an edge-backed topology without a dense matrix.

        ``rows``/``cols`` are directed-edge endpoint arrays; they are
        validated, deduplicated, and sorted row-major so the kernels see
        the exact edge order a dense ``np.nonzero`` would produce.
        """
        n = int(n)
        if n < 1:
            raise ValueError("need at least one process")
        rows = np.asarray(rows, dtype=np.intp).ravel()
        cols = np.asarray(cols, dtype=np.intp).ravel()
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have equal length")
        if rows.size and (rows.min() < 0 or rows.max() >= n
                          or cols.min() < 0 or cols.max() >= n):
            raise ValueError(f"edge endpoints out of range for n={n}")
        if np.any(rows == cols):
            raise ValueError("topology matrix must have a zero diagonal "
                             "(no self-coupling)")
        flat = np.unique(rows * n + cols)      # dedupe + row-major sort
        rows = (flat // n).astype(np.intp)
        cols = (flat % n).astype(np.intp)
        rows.setflags(write=False)
        cols.setflags(write=False)
        topo = cls(matrix=None, distances=distances, name=name,
                   periodic=periodic)
        topo._n = n
        topo._edge_cache = (rows, cols)
        return topo

    def __repr__(self) -> str:
        mode = "dense" if self._matrix is not None else "edges"
        return (f"Topology(name={self.name!r}, n={self.n}, "
                f"n_edges={self.n_edges}, {mode})")

    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The dense ``(N, N)`` coupling matrix (lazy for edge-backed)."""
        if self._matrix is None:
            n = self._n
            if self._edge_cache is None:
                raise ValueError("topology has neither a matrix nor edges")
            if n * n > _DENSE_LIMIT_ENTRIES:
                raise MemoryError(
                    f"refusing to densify {self.name!r} (N={n}: the matrix "
                    f"would hold {n * n:.2e} entries); use the edge-native "
                    "consumers (edge_list/csr) at this scale"
                )
            rows, cols = self._edge_cache
            m = np.zeros((n, n))
            m[rows, cols] = 1.0
            self._matrix = m
        return self._matrix

    @property
    def n(self) -> int:
        """Number of oscillators/processes."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of directed couplings (nonzero entries)."""
        return int(self.edge_list()[0].size)

    @property
    def is_symmetric(self) -> bool:
        """True if coupling is bidirectional everywhere."""
        rows, cols = self.edge_list()
        fwd = rows * self.n + cols
        rev = np.sort(cols * self.n + rows)
        return bool(np.array_equal(fwd, rev))

    @property
    def density(self) -> float:
        """Edge fraction ``E / N^2`` — drives the auto backend choice."""
        n = self.n
        return float(self.n_edges) / float(n * n) if n else 0.0

    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """Directed edges as ``(rows, cols)`` index arrays (cached).

        Row-major order (sorted by row, then column), which makes the
        sparse backend's segment sums accumulate contributions in the
        same order as the dense row sum.  The arrays are read-only views
        shared by every compiled backend — do not mutate them.
        """
        if self._edge_cache is None:
            rows, cols = np.nonzero(self.matrix)
            rows.setflags(write=False)
            cols.setflags(write=False)
            self._edge_cache = (rows, cols)
        return self._edge_cache

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR view ``(indptr, indices)`` of the coupling matrix (cached).

        ``indices[indptr[i]:indptr[i+1]]`` are the partners of oscillator
        ``i`` — the compressed form of :meth:`neighbors` for kernels that
        iterate rows.
        """
        if self._csr_cache is None:
            rows, cols = self.edge_list()
            counts = np.bincount(rows, minlength=self.n)
            indptr = np.concatenate(([0], np.cumsum(counts)))
            indptr.setflags(write=False)
            self._csr_cache = (indptr, cols)
        return self._csr_cache

    def degree(self) -> np.ndarray:
        """Out-degree (number of partners) of each oscillator."""
        rows, _ = self.edge_list()
        return np.bincount(rows, minlength=self.n).astype(float)

    def neighbors(self, i: int) -> np.ndarray:
        """Indices of the partners of oscillator ``i``."""
        indptr, indices = self.csr()
        return indices[indptr[i]:indptr[i + 1]]

    # ------------------------------------------------------------------
    # kappa rules (paper Sec. 3.1)
    # ------------------------------------------------------------------
    def kappa(self, waitall_grouped: bool = False) -> float:
        """Coupling distance parameter kappa.

        ``kappa`` is the sum over all communication distances; if the
        outstanding non-blocking requests of all partners are grouped in
        the same ``MPI_Waitall``, kappa collapses to the longest distance
        only (paper Sec. 3.1, after [4]).

        For topologies not built from a distance set, the per-rank
        neighbour index offsets are used as distances (ring metric when
        ``periodic``).
        """
        dists = self.distance_multiset()
        if len(dists) == 0:
            return 0.0
        mags = np.abs(np.asarray(dists, dtype=float))
        if waitall_grouped:
            return float(mags.max())
        return float(mags.sum())

    def distance_multiset(self) -> tuple[int, ...]:
        """Distances underlying this topology.

        Returns the generating distance set when known, otherwise
        extracts per-row index offsets from the matrix (using the ring
        metric when periodic) and returns the multiset of the first
        row's offsets — valid for translationally invariant topologies;
        for irregular graphs the mean row is used.
        """
        if self.distances:
            return self.distances
        n = self.n
        if n == 0:
            return ()
        offsets: list[int] = []
        row = self.neighbors(0)
        for j in row:
            off = int(j)
            if self.periodic and off > n // 2:
                off -= n
            offsets.append(off)
        return tuple(sorted(offsets))

    # ------------------------------------------------------------------
    def laplacian(self) -> np.ndarray:
        """Graph Laplacian ``L = D - T`` (symmetrised first).

        The spectral gap of ``L`` controls the linearised
        resynchronisation rate of attractive potentials; tests use it
        against the :class:`~repro.core.potentials.LinearPotential`.
        """
        m = 0.5 * (self.matrix + self.matrix.T)
        return np.diag(m.sum(axis=1)) - m

    def spectral_gap(self) -> float:
        """Second-smallest Laplacian eigenvalue (algebraic connectivity)."""
        eig = np.linalg.eigvalsh(self.laplacian())
        return float(eig[1]) if len(eig) > 1 else 0.0

    def to_networkx(self) -> nx.DiGraph:
        """Export as a directed networkx graph."""
        g = nx.DiGraph()
        g.add_nodes_from(range(self.n))
        rows, cols = self.edge_list()
        g.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return g

    def is_connected(self) -> bool:
        """Weak connectivity of the coupling graph."""
        return nx.is_weakly_connected(self.to_networkx()) if self.n > 0 else True

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {
            "name": self.name,
            "n": self.n,
            "distances": list(self.distances),
            "periodic": self.periodic,
            "n_edges": self.n_edges,
            "density": self.density,
            "kappa_sum": self.kappa(waitall_grouped=False),
            "kappa_max": self.kappa(waitall_grouped=True),
        }


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _normalise_distances(distances: Iterable[int]) -> tuple[int, ...]:
    dists = tuple(int(d) for d in distances)
    if len(dists) == 0:
        raise ValueError("distance set must not be empty")
    if any(d == 0 for d in dists):
        raise ValueError("distance 0 (self-communication) is not allowed")
    return dists


def ring(n: int, distances: Iterable[int] = (1, -1), *,
         symmetrize: bool = True) -> Topology:
    """Periodic 1-D process chain with the given distance set.

    ``ring(N, (1, -1))`` is the paper's ``d = ±1`` halo exchange;
    ``ring(N, (1, -1, -2))`` its ``d = ±1, -2`` variant.  With
    ``symmetrize=True`` (default) every send implies the reverse
    dependency, mirroring two-sided MPI semantics.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    dists = _normalise_distances(distances)
    m = np.zeros((n, n), dtype=float)
    for i in range(n):
        for d in dists:
            j = (i + d) % n
            m[i, j] = 1.0
            if symmetrize:
                m[j, i] = 1.0
    np.fill_diagonal(m, 0.0)
    return Topology(matrix=m, distances=dists,
                    name=f"ring{sorted(set(dists))}", periodic=True)


def ring_edges(n: int, distances: Iterable[int] = (1, -1), *,
               symmetrize: bool = True) -> Topology:
    """Edge-backed :func:`ring` for large N.

    Builds the identical edge set (and name/metadata) as ``ring(n,
    distances)`` directly as vectorised index arrays — O(E) time and
    memory instead of the O(N^2) dense matrix, which makes N >= 1e5
    rings tractable for the edge-list and fused kernels.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    dists = _normalise_distances(distances)
    dset = set(dists)
    if symmetrize:
        dset |= {-d for d in dists}
    i = np.arange(n, dtype=np.intp)
    rows_parts, cols_parts = [], []
    for d in sorted(dset):
        j = (i + d) % n
        keep = j != i                       # distances that are multiples of n
        rows_parts.append(i[keep])
        cols_parts.append(j[keep])
    return Topology.from_edge_arrays(
        n, np.concatenate(rows_parts), np.concatenate(cols_parts),
        distances=dists, name=f"ring{sorted(set(dists))}", periodic=True)


def chain(n: int, distances: Iterable[int] = (1, -1), *,
          symmetrize: bool = True) -> Topology:
    """Open (non-periodic) 1-D chain: ranks at the ends have fewer partners.

    Matches an MPI program without periodic boundary conditions.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    dists = _normalise_distances(distances)
    m = np.zeros((n, n), dtype=float)
    for i in range(n):
        for d in dists:
            j = i + d
            if 0 <= j < n:
                m[i, j] = 1.0
                if symmetrize:
                    m[j, i] = 1.0
    np.fill_diagonal(m, 0.0)
    return Topology(matrix=m, distances=dists,
                    name=f"chain{sorted(set(dists))}", periodic=False)


def all_to_all(n: int) -> Topology:
    """Fully connected topology — the plain Kuramoto pattern.

    The paper rejects this for parallel programs (it acts like a global
    barrier per cycle); kept as the baseline comparator.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    m = np.ones((n, n), dtype=float)
    np.fill_diagonal(m, 0.0)
    return Topology(matrix=m, distances=(), name="all-to-all", periodic=True)


def grid2d(nx_: int, ny_: int, *, periodic: bool = False) -> Topology:
    """2-D Cartesian 5-point halo topology (row-major rank order).

    Models ``MPI_Cart_create``-style domain decompositions.
    """
    if nx_ < 1 or ny_ < 1 or nx_ * ny_ < 2:
        raise ValueError("grid must contain at least two processes")
    n = nx_ * ny_
    m = np.zeros((n, n), dtype=float)

    def rank(ix: int, iy: int) -> int:
        return iy * nx_ + ix

    for iy in range(ny_):
        for ix in range(nx_):
            i = rank(ix, iy)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                jx, jy = ix + dx, iy + dy
                if periodic:
                    jx %= nx_
                    jy %= ny_
                elif not (0 <= jx < nx_ and 0 <= jy < ny_):
                    continue
                j = rank(jx, jy)
                if j != i:
                    m[i, j] = 1.0
    name = f"torus2d[{nx_}x{ny_}]" if periodic else f"grid2d[{nx_}x{ny_}]"
    return Topology(matrix=m, distances=(), name=name, periodic=periodic)


def torus2d(nx_: int, ny_: int) -> Topology:
    """Periodic 2-D grid (convenience wrapper)."""
    return grid2d(nx_, ny_, periodic=True)


def torus2d_edges(nx_: int, ny_: int) -> Topology:
    """Edge-backed :func:`torus2d` for large N (same edge set and name).

    The 5-point periodic halo as vectorised index arrays: rank
    ``iy*nx + ix`` couples to its four wrapped Cartesian neighbours.
    """
    if nx_ < 1 or ny_ < 1 or nx_ * ny_ < 2:
        raise ValueError("grid must contain at least two processes")
    n = nx_ * ny_
    r = np.arange(n, dtype=np.intp)
    ix, iy = r % nx_, r // nx_
    rows_parts, cols_parts = [], []
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        j = ((iy + dy) % ny_) * nx_ + (ix + dx) % nx_
        keep = j != r                       # 1-wide axes wrap onto self
        rows_parts.append(r[keep])
        cols_parts.append(j[keep])
    return Topology.from_edge_arrays(
        n, np.concatenate(rows_parts), np.concatenate(cols_parts),
        distances=(), name=f"torus2d[{nx_}x{ny_}]", periodic=True)


def _check_interconnect(topo: Topology, *, degree_min: int,
                        degree_max: int) -> Topology:
    """Builder self-check: symmetry + degree bounds for interconnects.

    The real-interconnect builders are pure index arithmetic; this guards
    against construction bugs (a missing reverse edge, a rank wired to
    the wrong tier) rather than bad user input, hence ``RuntimeError``.
    """
    deg = np.bincount(topo.edge_list()[0], minlength=topo.n)
    lo, hi = int(deg.min()), int(deg.max())
    if lo < degree_min or hi > degree_max:
        raise RuntimeError(
            f"internal: {topo.name} degrees in [{lo}, {hi}], expected "
            f"[{degree_min}, {degree_max}]")
    if not topo.is_symmetric:
        raise RuntimeError(f"internal: {topo.name} is not symmetric")
    return topo


def hypercube(dim: int) -> Topology:
    """Binary hypercube interconnect: ``2**dim`` ranks, degree ``dim``.

    Rank ``i`` couples to ``i XOR 2**b`` for each dimension ``b`` — the
    classic log-diameter network (and the communication pattern of
    recursive-doubling collectives).  The dimension-``b`` link spans an
    index distance of exactly ``2**b``, so the generating distance set
    is ``(1, 2, 4, ..., 2**(dim-1))``: ``kappa_sum = N - 1`` and
    ``kappa_max = N / 2`` under a grouped ``MPI_Waitall`` (Sec. 3.1
    rules applied verbatim to the hypercube distances).
    """
    dim = int(dim)
    if dim < 1:
        raise ValueError("hypercube needs dim >= 1")
    n = 1 << dim
    i = np.arange(n, dtype=np.intp)
    bits = (np.intp(1) << np.arange(dim, dtype=np.intp))
    rows = np.repeat(i, dim)
    cols = (i[:, None] ^ bits[None, :]).ravel()
    topo = Topology.from_edge_arrays(
        n, rows, cols, distances=tuple(int(b) for b in bits),
        name=f"hypercube[{dim}]", periodic=False)
    return _check_interconnect(topo, degree_min=dim, degree_max=dim)


def fat_tree(k: int) -> Topology:
    """k-ary fat-tree interconnect with switches as oscillator ranks.

    The standard 3-tier Clos fabric: ``k`` pods of ``k/2`` edge and
    ``k/2`` aggregation switches plus ``(k/2)^2`` core switches —
    ``N = k^2 + (k/2)^2`` ranks.  Rank order is pod-major (pod ``p``
    holds edge switches ``p*k .. p*k+k/2-1`` then aggregation switches
    ``p*k+k/2 .. p*k+k-1``), cores last.  Links: full bipartite
    edge<->aggregation inside each pod, and aggregation switch ``j`` of
    every pod to core switches ``j*k/2 .. (j+1)*k/2-1``.

    Degrees: edge ``k/2``, aggregation and core ``k``.  Index offsets
    are not translation invariant here, so the kappa story is the
    unit-hop one: every link is one switch hop, and the busiest rank
    (aggregation/core) drives ``k`` of them per cycle — distances are
    ``(1,) * k``, giving ``kappa_sum = k`` and ``kappa_max = 1``.
    """
    k = int(k)
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be an even integer >= 2")
    h = k // 2
    n = k * k + h * h
    pods = np.arange(k, dtype=np.intp)
    slot = np.arange(h, dtype=np.intp)
    edge = pods[:, None] * k + slot[None, :]          # (k, h)
    agg = edge + h                                    # (k, h)
    # full bipartite edge<->agg per pod: (k, h_edge, h_agg)
    e_rows = np.repeat(edge[:, :, None], h, axis=2)
    e_cols = np.repeat(agg[:, None, :], h, axis=1)
    # agg slot j of every pod <-> cores j*h .. (j+1)*h-1: (k, h_agg, h_core)
    core = k * k + (slot[:, None] * h + slot[None, :])  # (h_agg, h_core)
    a_rows = np.repeat(agg[:, :, None], h, axis=2)
    a_cols = np.broadcast_to(core[None, :, :], (k, h, h))
    fwd_rows = np.concatenate([e_rows.ravel(), a_rows.ravel()])
    fwd_cols = np.concatenate([e_cols.ravel(), a_cols.ravel()])
    topo = Topology.from_edge_arrays(
        n, np.concatenate([fwd_rows, fwd_cols]),
        np.concatenate([fwd_cols, fwd_rows]),
        distances=(1,) * k, name=f"fattree[k={k}]", periodic=False)
    return _check_interconnect(topo, degree_min=h, degree_max=k)


def dragonfly(groups: int, routers: int, terminals: int = 0,
              global_links: int = 1) -> Topology:
    """Dragonfly interconnect: router groups, local cliques, global links.

    ``groups`` groups of ``routers`` fully connected routers; every
    ordered pair of groups is joined by one global link, with the
    ``groups - 1`` global link slots of a group dealt round-robin over
    its routers (``global_links`` slots per router, so
    ``routers * global_links >= groups - 1`` must hold — the canonical
    balanced dragonfly has ``a = 2h``).  Optionally ``terminals`` leaf
    ranks hang off each router (star edges), modelling compute nodes
    behind the fabric: ``N = groups * routers * (1 + terminals)``.
    Rank order: routers group-major first, then terminals router-major.

    Like the fat-tree, index offsets carry no structure, so kappa uses
    the unit-hop rule: distances are ``(1,) * max_degree`` — the
    busiest router waits on ``routers - 1`` local peers, its global
    links, and its terminals — giving ``kappa_sum = max_degree`` and
    ``kappa_max = 1``.
    """
    g, a = int(groups), int(routers)
    t, h = int(terminals), int(global_links)
    if g < 2:
        raise ValueError("dragonfly needs at least two groups")
    if a < 1 or h < 1 or t < 0:
        raise ValueError("dragonfly needs routers >= 1, global_links >= 1 "
                         "and terminals >= 0")
    if g - 1 > a * h:
        raise ValueError(
            f"dragonfly with {g} groups needs {g - 1} global link slots "
            f"per group, but routers * global_links = {a * h}")
    n_r = g * a
    n = n_r * (1 + t)
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    # local all-to-all clique inside each group
    if a > 1:
        lr, lc = np.nonzero(1 - np.eye(a))
        base = (np.arange(g, dtype=np.intp) * a)[:, None]
        rows_parts.append((base + lr[None, :].astype(np.intp)).ravel())
        cols_parts.append((base + lc[None, :].astype(np.intp)).ravel())
    # one global link per ordered group pair: the slot for peer group gj
    # inside group gi is q = gj - (gj > gi) in [0, g-2], owned by router
    # q // h.  The rule is its own mirror, so iterating ordered pairs
    # emits both directions of every physical link.
    gi, gj = np.nonzero(1 - np.eye(g))
    gi = gi.astype(np.intp)
    gj = gj.astype(np.intp)
    q = gj - (gj > gi)
    qr = gi - (gi > gj)
    rows_parts.append(gi * a + q // h)
    cols_parts.append(gj * a + qr // h)
    # terminal stars
    if t:
        r = np.arange(n_r, dtype=np.intp)
        term = n_r + (r[:, None] * t + np.arange(t, dtype=np.intp)[None, :])
        rr, tt = np.repeat(r, t), term.ravel()
        rows_parts += [rr, tt]
        cols_parts += [tt, rr]
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    max_deg = int(np.bincount(rows, minlength=n).max())
    topo = Topology.from_edge_arrays(
        n, rows, cols, distances=(1,) * max_deg,
        name=f"dragonfly[{g}x{a}" + (f"+{t}t]" if t else "]"),
        periodic=False)
    return _check_interconnect(topo, degree_min=1, degree_max=max_deg)


def random_topology(n: int, p: float, *, rng: np.random.Generator | None = None,
                    symmetrize: bool = True, ensure_connected: bool = True,
                    max_tries: int = 100) -> Topology:
    """Erdős–Rényi coupling graph with edge probability ``p``.

    Used for noise/topology robustness studies (paper Sec. 6 outlook).
    ``ensure_connected`` redraws until weakly connected (raises after
    ``max_tries`` failures).
    """
    if n < 2:
        raise ValueError("need at least two processes")
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must be in [0, 1]")
    if rng is None:
        rng = np.random.default_rng()
    for _ in range(max_tries):
        m = (rng.random((n, n)) < p).astype(float)
        np.fill_diagonal(m, 0.0)
        if symmetrize:
            m = np.maximum(m, m.T)
        topo = Topology(matrix=m, distances=(), name=f"er[p={p}]", periodic=False)
        if not ensure_connected or topo.is_connected():
            return topo
    raise RuntimeError(
        f"could not draw a connected topology in {max_tries} tries (n={n}, p={p})"
    )


def from_edges(n: int, edges: Sequence[tuple[int, int]], *,
               symmetrize: bool = True, name: str = "edges") -> Topology:
    """Build a topology from an explicit edge list."""
    m = np.zeros((n, n), dtype=float)
    for i, j in edges:
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"edge ({i}, {j}) out of range for n={n}")
        if i == j:
            raise ValueError("self-edges are not allowed")
        m[i, j] = 1.0
        if symmetrize:
            m[j, i] = 1.0
    return Topology(matrix=m, distances=(), name=name, periodic=False)


def from_networkx(graph: nx.Graph | nx.DiGraph, *, name: str | None = None) -> Topology:
    """Build a topology from a networkx graph (nodes relabelled 0..N-1)."""
    nodes = sorted(graph.nodes())
    index = {v: k for k, v in enumerate(nodes)}
    n = len(nodes)
    m = np.zeros((n, n), dtype=float)
    for u, v in graph.edges():
        m[index[u], index[v]] = 1.0
        if not graph.is_directed():
            m[index[v], index[u]] = 1.0
    return Topology(matrix=m, distances=(),
                    name=name or f"nx[{graph.__class__.__name__}]",
                    periodic=False)


def dependency_topology(n: int, send_distances: Iterable[int], *,
                        rendezvous: bool = False,
                        periodic: bool = True) -> Topology:
    """Directed dependency matrix induced by an MPI send-distance set.

    With *eager* sends only the **receiver** waits: rank ``i`` receives
    from ``i - d`` for each send distance ``d``, so ``T[i, i-d] = 1``
    (its phase rate depends on those partners) and nothing more.  With
    *rendezvous* sends the sender also waits for the receiver to post,
    adding the reverse edges ``T[i, i+d] = 1`` — which symmetrises the
    matrix for symmetric distance sets and strictly enlarges it for
    asymmetric ones (e.g. the paper's ``d = ±1, -2``).

    This is the faithful fine-grained alternative to the symmetric
    :func:`ring` builder (the paper's "connection between oscillators i
    and j"); experiments use :func:`ring`, ablations compare both.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    dists = _normalise_distances(send_distances)
    m = np.zeros((n, n), dtype=float)
    for i in range(n):
        for d in dists:
            j = i - d          # we receive from i - d
            if periodic:
                m[i, j % n] = 1.0
            elif 0 <= j < n:
                m[i, j] = 1.0
            if rendezvous:
                k = i + d      # our send blocks on i + d
                if periodic:
                    m[i, k % n] = 1.0
                elif 0 <= k < n:
                    m[i, k] = 1.0
    np.fill_diagonal(m, 0.0)
    proto = "rdv" if rendezvous else "eager"
    return Topology(matrix=m, distances=dists,
                    name=f"dep[{proto}]{sorted(set(dists))}",
                    periodic=periodic)


# ----------------------------------------------------------------------
# Builder registry
# ----------------------------------------------------------------------
#: ``backing="auto"`` prefers the dense builder up to this many ranks
#: (cheap, maximally compatible), then switches to the edge-backed
#: builder when one exists so large topologies never allocate (N, N).
_AUTO_DENSE_MAX_N = 512


@dataclass(frozen=True)
class TopologyKind:
    """One registered topology kind: builders plus self-description.

    ``dense`` and ``edges`` are the two backings (either may be
    ``None``); parameter names and defaults are introspected from the
    canonical builder's signature, so registration is the single source
    of truth for spec vocabulary, error messages, and docs.
    """

    kind: str
    n_formula: Callable[[dict], int]
    n_doc: str
    kappa_doc: str
    description: str
    dense: Callable[..., Topology] | None = None
    edges: Callable[..., Topology] | None = None

    @property
    def canonical(self) -> Callable[..., Topology]:
        return self.edges if self.edges is not None else self.dense

    def param_names(self) -> tuple[str, ...]:
        return tuple(inspect.signature(self.canonical).parameters)

    def signature_doc(self) -> str:
        """``kind(param, opt=default, ...)`` for error messages/docs."""
        parts = []
        for p in inspect.signature(self.canonical).parameters.values():
            if p.default is inspect.Parameter.empty:
                parts.append(p.name)
            else:
                parts.append(f"{p.name}={p.default!r}")
        return f"{self.kind}({', '.join(parts)})"


TOPOLOGY_REGISTRY: dict[str, TopologyKind] = {}

#: spec-compat aliases: old edge-builder names force backing="edges"
_TOPOLOGY_ALIASES: dict[str, tuple[str, str]] = {
    "ring_edges": ("ring", "edges"),
    "torus2d_edges": ("torus2d", "edges"),
}


def register_topology(entry: TopologyKind) -> TopologyKind:
    """Add a kind to the registry (new kinds need exactly this one call)."""
    if entry.dense is None and entry.edges is None:
        raise ValueError(f"kind {entry.kind!r} registers no builder")
    TOPOLOGY_REGISTRY[entry.kind] = entry
    return entry


def topology_kinds() -> dict[str, dict]:
    """Self-describing registry table: kind -> params/N-formula/kappa.

    Consumed by the service ``/v1/registry`` endpoint, the README table,
    and the unknown-kind error message.
    """
    out = {}
    for name in sorted(TOPOLOGY_REGISTRY):
        e = TOPOLOGY_REGISTRY[name]
        backings = [b for b in ("dense", "edges") if getattr(e, b)]
        out[name] = {
            "params": list(e.param_names()),
            "signature": e.signature_doc(),
            "n": e.n_doc,
            "kappa": e.kappa_doc,
            "backings": backings,
            "description": e.description,
        }
    return out


def _unknown_kind_message(kind: str) -> str:
    lines = [f"unknown topology kind {kind!r}; registered kinds:"]
    for name, info in topology_kinds().items():
        lines.append(f"  {info['signature']} — {info['description']}")
    aliases = ", ".join(f"{a} = {b} (backing={m!r})"
                        for a, (b, m) in sorted(_TOPOLOGY_ALIASES.items()))
    lines.append(f"aliases: {aliases}")
    return "\n".join(lines)


def _resolve_kind(kind: str) -> tuple[TopologyKind, str | None]:
    """Registry entry for ``kind`` plus the backing an alias forces."""
    if kind in _TOPOLOGY_ALIASES:
        base, backing = _TOPOLOGY_ALIASES[kind]
        return TOPOLOGY_REGISTRY[base], backing
    entry = TOPOLOGY_REGISTRY.get(kind)
    if entry is None:
        raise ValueError(_unknown_kind_message(kind))
    return entry, None


def _bind_params(entry: TopologyKind, params: dict) -> dict:
    """Validate spec params against the builder signature, fill defaults."""
    sig = inspect.signature(entry.canonical)
    accepted = set(sig.parameters)
    extra = set(params) - accepted
    if extra:
        raise ValueError(
            f"unknown key(s) {sorted(extra)} for kind {entry.kind!r}; "
            f"accepted: {sorted(accepted)}")
    missing = sorted(
        p.name for p in sig.parameters.values()
        if p.default is inspect.Parameter.empty and p.name not in params)
    if missing:
        raise ValueError(
            f"missing required key(s) {missing} for kind {entry.kind!r}; "
            f"expected {entry.signature_doc()}")
    bound = sig.bind(**params)
    bound.apply_defaults()
    return dict(bound.arguments)


def make_topology(kind: str, *, backing: str = "auto",
                  **params) -> Topology:
    """Build any registered topology kind by name.

    ``backing`` selects the storage mode: ``"dense"`` for an ``(N, N)``
    matrix, ``"edges"`` for the edge-list form, or ``"auto"`` (default)
    which stays dense up to ``_AUTO_DENSE_MAX_N`` ranks and switches to
    the edge builder beyond — both backings of a kind produce the same
    name, edge set (in dense ``np.nonzero`` order), and kappa metadata,
    so the choice never changes results.  The legacy ``*_edges`` names
    resolve as aliases that force ``backing="edges"``.
    """
    if backing not in ("auto", "dense", "edges"):
        raise ValueError(
            f"backing must be 'auto', 'dense' or 'edges', got {backing!r}")
    entry, forced = _resolve_kind(str(kind))
    if forced is not None:
        if backing not in ("auto", forced):
            raise ValueError(
                f"kind {kind!r} is an alias that forces backing={forced!r}; "
                f"got backing={backing!r}")
        backing = forced
    filled = _bind_params(entry, params)
    if backing == "auto":
        if entry.dense is not None and (
                entry.edges is None
                or int(entry.n_formula(filled)) <= _AUTO_DENSE_MAX_N):
            backing = "dense"
        else:
            backing = "edges"
    builder = entry.dense if backing == "dense" else entry.edges
    if builder is None:
        have = [b for b in ("dense", "edges") if getattr(entry, b)]
        raise ValueError(
            f"kind {entry.kind!r} has no {backing!r} builder "
            f"(available: {have})")
    return builder(**params)


def topology_n_from_spec(d: dict) -> int:
    """Rank count of a topology spec dict, from structural params only.

    Used by the planner to estimate shard footprints and to decide
    topology-axis fusion without building the topology.  Raises (rather
    than misestimating) on unknown kinds or missing params.
    """
    spec = dict(d)
    kind = str(spec.pop("kind", "ring"))
    entry, _ = _resolve_kind(kind)
    filled = _bind_params(entry, spec)
    n = int(entry.n_formula(filled))
    if n < 1:
        raise ValueError(f"kind {kind!r} with params {spec} gives N={n}")
    return n


# --- canonical spec-facing wrappers (parameter names ARE the spec keys;
# the local ``nx``/``ny`` shadow the networkx import only inside these
# bodies, which never touch it) ------------------------------------------
def _torus2d_dense(nx: int, ny: int) -> Topology:
    return grid2d(int(nx), int(ny), periodic=True)


def _torus2d_edges(nx: int, ny: int) -> Topology:
    return torus2d_edges(int(nx), int(ny))


def _grid2d_dense(nx: int, ny: int, periodic: bool = False) -> Topology:
    return grid2d(int(nx), int(ny), periodic=bool(periodic))


def _dependency_dense(n: int, distances: Iterable[int],
                      rendezvous: bool = False,
                      periodic: bool = True) -> Topology:
    return dependency_topology(int(n), distances, rendezvous=bool(rendezvous),
                               periodic=bool(periodic))


register_topology(TopologyKind(
    kind="ring", dense=ring, edges=ring_edges,
    n_formula=lambda p: int(p["n"]), n_doc="n",
    kappa_doc="sum|d| / max|d| over the distance set",
    description="periodic 1-D halo exchange over a distance set"))
register_topology(TopologyKind(
    kind="chain", dense=chain,
    n_formula=lambda p: int(p["n"]), n_doc="n",
    kappa_doc="sum|d| / max|d| over the distance set",
    description="open 1-D chain (no periodic wrap)"))
register_topology(TopologyKind(
    kind="all_to_all", dense=all_to_all,
    n_formula=lambda p: int(p["n"]), n_doc="n",
    kappa_doc="0 (no distance structure)",
    description="fully connected baseline (global-barrier-like)"))
register_topology(TopologyKind(
    kind="grid2d", dense=_grid2d_dense,
    n_formula=lambda p: int(p["nx"]) * int(p["ny"]), n_doc="nx*ny",
    kappa_doc="row-0 neighbour offsets (5-point stencil)",
    description="open 2-D Cartesian 5-point halo"))
register_topology(TopologyKind(
    kind="torus2d", dense=_torus2d_dense, edges=_torus2d_edges,
    n_formula=lambda p: int(p["nx"]) * int(p["ny"]), n_doc="nx*ny",
    kappa_doc="row-0 neighbour offsets (wrapped 5-point stencil)",
    description="periodic 2-D Cartesian 5-point halo"))
register_topology(TopologyKind(
    kind="dependency", dense=_dependency_dense,
    n_formula=lambda p: int(p["n"]), n_doc="n",
    kappa_doc="sum|d| / max|d| over the send-distance set",
    description="directed eager/rendezvous MPI dependency matrix"))
register_topology(TopologyKind(
    kind="hypercube", edges=hypercube,
    n_formula=lambda p: 1 << int(p["dim"]), n_doc="2**dim",
    kappa_doc="distances (1, 2, ..., 2**(dim-1)): sum = N-1, max = N/2",
    description="binary hypercube, rank i <-> i XOR 2**b"))
register_topology(TopologyKind(
    kind="fattree", edges=fat_tree,
    n_formula=lambda p: int(p["k"]) ** 2 + (int(p["k"]) // 2) ** 2,
    n_doc="k**2 + (k//2)**2",
    kappa_doc="unit-hop distances (1,)*k: sum = k, max = 1",
    description="k-ary 3-tier fat-tree (edge/agg/core switches as ranks)"))
register_topology(TopologyKind(
    kind="dragonfly", edges=dragonfly,
    n_formula=lambda p: (int(p["groups"]) * int(p["routers"])
                         * (1 + int(p.get("terminals") or 0))),
    n_doc="groups*routers*(1+terminals)",
    kappa_doc="unit-hop distances (1,)*max_degree: sum = max_degree, "
              "max = 1",
    description="dragonfly (local cliques + round-robin global links "
                "+ optional terminals)"))
