"""The physical oscillator model (paper Eq. 2) and the Kuramoto baseline.

The POM describes ``N`` MPI processes as coupled oscillators:

.. math::

    \\dot\\theta_i(t) = \\frac{2\\pi}{t_{comp} + t_{comm} + \\zeta_i(t)}
        + \\frac{v_p}{N} \\sum_{j=1}^{N} T_{ij}
          V\\big(\\theta_j(t - \\tau_{ij}(t)) - \\theta_i(t)\\big)

with

* intrinsic frequency set by the compute-communicate cycle duration,
* process-local noise ``zeta_i`` (jitter / load imbalance / injected
  one-off delays) perturbing the period,
* a 0/1 topology matrix ``T`` (sparse communication structure),
* an interaction potential ``V`` (scalable: tanh; bottlenecked:
  short-range-repulsive sine/sgn),
* coupling strength ``v_p = beta * kappa / (t_comp + t_comm)``,
* optional interaction delays ``tau_ij`` that turn the ODE into a DDE.

:class:`PhysicalOscillatorModel` is a declarative description; calling
:meth:`~PhysicalOscillatorModel.realize` freezes the random noise
channels into a :class:`RealizedModel` whose ``rhs`` is a plain function
of ``(t, theta)`` suitable for any explicit integrator.

:class:`KuramotoModel` implements the unmodified Eq. 1 (all-to-all
``sin`` coupling) as the comparison baseline the paper argues against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..backends import (
    RHSBackend,
    make_backend,
    normalize_backend_name,
    normalize_kernel_name,
)
from ..integrate.history import HistoryBuffer
from .coupling import CouplingSpec
from .noise import (
    DelaySchedule,
    InteractionNoise,
    LocalNoise,
    NoInteractionNoise,
    NoNoise,
    OneOffDelay,
    TauField,
    ZetaProcess,
)
from .potentials import Potential
from .topology import Topology

__all__ = ["PhysicalOscillatorModel", "RealizedModel", "KuramotoModel"]


@dataclass
class PhysicalOscillatorModel:
    """Declarative description of the POM (Eq. 2).

    Parameters
    ----------
    topology:
        Communication topology ``T_ij``.
    potential:
        Interaction potential ``V``.
    t_comp, t_comm:
        Durations of the computation and communication phase of one
        cycle (seconds); the natural period is their sum.
    coupling:
        Protocol/wait-mode specification that determines
        ``v_p = beta*kappa/(t_comp+t_comm)``.
    local_noise:
        ``zeta_i(t)`` channel (default: silent system).
    interaction_noise:
        ``tau_ij(t)`` channel (default: no delays — pure ODE).
    delays:
        One-off extra-workload injections (idle-wave triggers).
    v_p_override:
        If set, bypasses the coupling formula and uses this coupling
        strength directly (used by parameter sweeps that scan ``v_p``
        or ``beta*kappa`` continuously).
    backend:
        RHS compute backend: ``"auto"`` (default — pick by topology
        density), ``"dense"`` (O(N^2) reference) or ``"sparse"``
        (O(E) edge-list kernel).  See :mod:`repro.backends`.
    kernel:
        Coupling-loop kernel for the edge-list backends: ``"auto"``
        (default — fastest available), ``"numpy"``, ``"tiled"``,
        ``"numba"``, or ``"cc"``.  See :mod:`repro.kernels`.
    """

    topology: Topology
    potential: Potential
    t_comp: float
    t_comm: float
    coupling: CouplingSpec = field(default_factory=CouplingSpec)
    local_noise: LocalNoise = field(default_factory=NoNoise)
    interaction_noise: InteractionNoise = field(default_factory=NoInteractionNoise)
    delays: Sequence[OneOffDelay] = ()
    v_p_override: float | None = None
    backend: str = "auto"
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.t_comp < 0 or self.t_comm < 0:
            raise ValueError("t_comp and t_comm must be non-negative")
        normalize_backend_name(self.backend)
        normalize_kernel_name(self.kernel)
        if self.t_comp + self.t_comm <= 0:
            raise ValueError("the cycle time t_comp + t_comm must be positive")
        for d in self.delays:
            if d.rank >= self.topology.n:
                raise ValueError(
                    f"one-off delay rank {d.rank} out of range "
                    f"(N={self.topology.n})"
                )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of oscillators."""
        return self.topology.n

    @property
    def period(self) -> float:
        """Unperturbed cycle time ``T = t_comp + t_comm``."""
        return self.t_comp + self.t_comm

    @property
    def omega(self) -> float:
        """Unperturbed angular frequency ``2*pi/T``."""
        return 2.0 * np.pi / self.period

    @property
    def v_p(self) -> float:
        """Coupling strength (override or the Sec. 3.1 formula)."""
        if self.v_p_override is not None:
            return float(self.v_p_override)
        return self.coupling.v_p(self.topology, self.t_comp, self.t_comm)

    @property
    def beta_kappa(self) -> float:
        """Dimensionless stiffness ``beta*kappa`` (from the formula)."""
        if self.v_p_override is not None:
            return float(self.v_p_override) * self.period
        return self.coupling.beta_kappa(self.topology)

    # ------------------------------------------------------------------
    def realize(self, t_end: float,
                rng: np.random.Generator | int | None = None,
                backend: str | None = None,
                kernel: str | None = None,
                threads: int | None = None) -> "RealizedModel":
        """Freeze all stochastic channels for a concrete run.

        Parameters
        ----------
        t_end:
            Horizon the noise realisations must cover.
        rng:
            Generator or integer seed; ``None`` uses fresh entropy.
        backend:
            Per-run override of the model's ``backend`` knob.
        kernel:
            Per-run override of the model's ``kernel`` knob.
        threads:
            In-kernel thread count for the compiled kernels (runtime
            knob only — bit-identical for any value, so it never enters
            ``describe()`` or content hashes).  Default: the
            ``POM_NUM_THREADS`` environment variable, else 1.
        """
        if t_end <= 0:
            raise ValueError("t_end must be positive")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        zeta = self.local_noise.realize(self.n, t_end, rng)
        tau = self.interaction_noise.realize(self.n, t_end, rng)
        schedule = DelaySchedule(self.delays, self.period)
        return RealizedModel(model=self, zeta=zeta, tau=tau,
                             delay_schedule=schedule,
                             backend=backend if backend is not None
                             else self.backend,
                             kernel=kernel if kernel is not None
                             else self.kernel,
                             threads=threads)

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {
            "n": self.n,
            "t_comp": self.t_comp,
            "t_comm": self.t_comm,
            "period": self.period,
            "omega": self.omega,
            "v_p": self.v_p,
            "beta_kappa": self.beta_kappa,
            "backend": self.backend,
            "kernel": self.kernel,
            "potential": self.potential.describe(),
            "topology": self.topology.describe(),
            "coupling": self.coupling.describe(self.topology),
            "local_noise": self.local_noise.describe(),
            "interaction_noise": self.interaction_noise.describe(),
            "delays": DelaySchedule(self.delays, self.period).describe(),
        }


class RealizedModel:
    """A POM with frozen noise: a deterministic RHS ``f(t, theta)``.

    Adaptive solvers evaluate the RHS at arbitrary, repeated times, so
    every random channel must be a function of time only — this object
    guarantees that.

    The actual RHS arithmetic is delegated to a compiled compute backend
    (:mod:`repro.backends`): dense matrix algebra, or the O(E) edge-list
    kernel for sparse topologies (default choice is by density).
    """

    def __init__(self, model: PhysicalOscillatorModel, zeta: ZetaProcess,
                 tau: TauField, delay_schedule: DelaySchedule,
                 backend: str = "auto", kernel: str = "auto",
                 threads: int | None = None) -> None:
        self.model = model
        self.zeta = zeta
        self.tau = tau
        self.delay_schedule = delay_schedule
        self._period = model.period
        self._n = model.n
        self._backend_request = normalize_backend_name(backend)
        self._kernel_request = normalize_kernel_name(kernel)
        # Runtime-only knob: never describes/hashes (results are
        # bit-identical for any thread count).
        self._threads_request = threads
        self._backend: RHSBackend | None = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of oscillators."""
        return self._n

    @property
    def backend(self) -> RHSBackend:
        """The compiled compute backend (compiled lazily on first use).

        Lazy so that consumers with their own kernels — notably the
        batched ensemble path, which stacks many realisations — do not
        pay for R unused single-state compilations.
        """
        if self._backend is None:
            self._backend = make_backend(self, self._backend_request,
                                         kernel=self._kernel_request,
                                         threads=self._threads_request)
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the compiled compute backend."""
        return self.backend.name

    @property
    def has_delays(self) -> bool:
        """True if the interaction-noise channel actually delays."""
        return not self.tau.is_zero

    def max_delay(self) -> float:
        """History horizon needed by the DDE integrator."""
        return self.tau.max_delay()

    # ------------------------------------------------------------------
    def intrinsic_frequency(self, t: float) -> np.ndarray:
        """Per-process frequency ``2*pi/(T + zeta_i(t) + delay terms)``.

        A non-positive or infinite effective period yields frequency 0
        (a fully stalled process), which is the exact meaning of a
        one-off full-stall injection.
        """
        return self.backend.intrinsic_frequency(t)

    def coupling_term(self, t: float, theta: np.ndarray,
                      history: HistoryBuffer | None = None) -> np.ndarray:
        """Interaction term ``(v_p/N) * sum_j T_ij V(theta_j^(del) - theta_i)``."""
        return self.backend.coupling(t, theta, history)

    def rhs(self, t: float, theta: np.ndarray,
            history: HistoryBuffer | None = None) -> np.ndarray:
        """Full right-hand side of Eq. 2."""
        return self.intrinsic_frequency(t) + self.coupling_term(t, theta, history)

    def make_ode_rhs(self):
        """Closure ``f(t, theta)`` for ODE solvers (requires no delays)."""
        if self.has_delays:
            raise ValueError(
                "model has interaction delays; use make_dde_rhs with a history"
            )
        return lambda t, y: self.rhs(t, y, None)

    def make_dde_rhs(self, history: HistoryBuffer):
        """Closure ``f(t, theta)`` that reads delayed states from ``history``."""
        return lambda t, y: self.rhs(t, y, history)


@dataclass
class KuramotoModel:
    """The plain Kuramoto model (paper Eq. 1) — baseline comparator.

    .. math::

        \\dot\\theta_i = \\omega_i + \\frac{K}{N} \\sum_j
            \\sin(\\theta_j - \\theta_i)

    All-to-all coupling, periodic sinusoidal potential, optionally
    heterogeneous natural frequencies.  The paper lists three reasons it
    cannot describe parallel programs (global coupling = per-cycle
    barrier; no desynchronised equilibria; 2*pi phase slips); the
    benchmark :mod:`benchmarks.bench_kuramoto_baseline` demonstrates all
    three against the POM.
    """

    n: int
    coupling_k: float
    omega: Sequence[float] | float = 1.0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("need at least two oscillators")
        om = np.asarray(self.omega, dtype=float)
        if om.ndim == 0:
            om = np.full(self.n, float(om))
        if om.shape != (self.n,):
            raise ValueError(f"omega has shape {om.shape}, expected ({self.n},)")
        self._omega_vec = om

    @property
    def omega_vec(self) -> np.ndarray:
        """Natural frequencies, shape ``(n,)``."""
        return self._omega_vec

    def rhs(self, t: float, theta: np.ndarray) -> np.ndarray:
        """Right-hand side of Eq. 1 (vectorised)."""
        dmat = theta[None, :] - theta[:, None]
        return self._omega_vec + (self.coupling_k / self.n) * np.sin(dmat).sum(axis=1)

    def make_ode_rhs(self):
        """Closure for the ODE solvers."""
        return self.rhs

    def critical_coupling(self, gamma: float) -> float:
        """Onset of synchronisation ``K_c = 2*gamma`` for a Lorentzian
        frequency distribution with half-width ``gamma`` (classic result,
        Strogatz 2000) — used in baseline validation tests."""
        return 2.0 * gamma

    def describe(self) -> dict:
        """Metadata dictionary used by exporters."""
        return {
            "model": "kuramoto",
            "n": self.n,
            "K": self.coupling_k,
            "omega_mean": float(self._omega_vec.mean()),
            "omega_std": float(self._omega_vec.std()),
        }
