"""Trajectory container and the paper's standard phase views.

The paper's artifact offers three visualisations (Sec. 3.2):

(i)   the *circle diagram* — instantaneous phases on the unit circle,
      coloured by frequency;
(ii)  the *timeline of phase differences* between coupled oscillators;
(iii) the *timeline of potentials* along the coupled pairs.

Its standard view plots ``theta_i - omega*t`` **normalised to the
slowest ("lagger") process as the baseline** — this is what makes idle
waves and computational wavefronts visible as ridges/slopes.
:class:`OscillatorTrajectory` implements all of these as array-returning
methods; rendering lives in :mod:`repro.viz`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..integrate.solution import Solution
from .model import PhysicalOscillatorModel

__all__ = ["OscillatorTrajectory"]


@dataclass
class OscillatorTrajectory:
    """Solved phases ``theta_i(t)`` plus the model that produced them.

    Attributes
    ----------
    ts:
        Time mesh, shape ``(n_t,)``.
    thetas:
        Phases, shape ``(n_t, n)``.
    model:
        The (declarative) model; used for ``omega``, topology, potential.
    solution:
        The raw solver output (kept for dense evaluation and stats).
    seed:
        Seed used for the noise realisation (``None`` = fresh entropy).
    """

    ts: np.ndarray
    thetas: np.ndarray
    model: PhysicalOscillatorModel
    solution: Solution | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        self.ts = np.asarray(self.ts, dtype=float)
        self.thetas = np.asarray(self.thetas, dtype=float)
        if self.thetas.ndim != 2:
            raise ValueError("thetas must be 2-D (n_t, n)")
        if self.ts.shape[0] != self.thetas.shape[0]:
            raise ValueError("ts and thetas disagree on the number of samples")
        if self.thetas.shape[1] != self.model.n:
            raise ValueError(
                f"thetas has {self.thetas.shape[1]} oscillators, "
                f"model has {self.model.n}"
            )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of oscillators."""
        return int(self.thetas.shape[1])

    @property
    def n_samples(self) -> int:
        """Number of time samples."""
        return int(self.ts.shape[0])

    @property
    def t_end(self) -> float:
        """Final time."""
        return float(self.ts[-1])

    @property
    def final_phases(self) -> np.ndarray:
        """Phases at the final time, shape ``(n,)``."""
        return self.thetas[-1]

    # ------------------------------------------------------------------
    # The paper's standard views
    # ------------------------------------------------------------------
    def comoving_phases(self) -> np.ndarray:
        """``theta_i(t) - omega*t`` — phases in the co-rotating frame."""
        return self.thetas - self.model.omega * self.ts[:, None]

    def lagger_normalized(self) -> np.ndarray:
        """Co-rotating phases with the lagger as baseline (standard view).

        At each time the minimum co-moving phase (the slowest process)
        is subtracted, so the output is >= 0 with the lagger pinned at 0
        — the representation in which idle waves appear as travelling
        ridges (paper Sec. 3.2).
        """
        x = self.comoving_phases()
        return x - x.min(axis=1, keepdims=True)

    def phase_differences(self, pairs: list[tuple[int, int]] | None = None
                          ) -> np.ndarray:
        """Timeline of ``theta_j - theta_i`` for the given pairs.

        Defaults to the ring-adjacent pairs ``(i, i+1 mod n)`` — the
        gaps whose asymptotics define sync (all ~0) vs. desync (all at
        the potential's stable gap).  Shape ``(n_t, len(pairs))``.
        """
        if pairs is None:
            pairs = [(i, (i + 1) % self.n) for i in range(self.n)]
        out = np.empty((self.n_samples, len(pairs)))
        for k, (i, j) in enumerate(pairs):
            out[:, k] = self.thetas[:, j] - self.thetas[:, i]
        return out

    def potential_timeline(self, pairs: list[tuple[int, int]] | None = None
                           ) -> np.ndarray:
        """Timeline of ``V(theta_j - theta_i)`` along coupled pairs.

        Defaults to every directed edge of the topology; shape
        ``(n_t, n_pairs)``.  Near an asymptotic state all entries sit at
        (or oscillate tightly around) zeros of the potential.
        """
        if pairs is None:
            rows, cols = self.model.topology.edge_list()
            pairs = list(zip(rows.tolist(), cols.tolist()))
        diffs = self.phase_differences(pairs)
        return np.asarray(self.model.potential(diffs), dtype=float)

    def circle_state(self, t_index: int = -1) -> dict:
        """Circle-diagram data at one sample: positions + frequencies.

        Returns ``{"angles": theta mod 2*pi, "x": cos, "y": sin,
        "frequency": estimated instantaneous frequency}`` — the model's
        circle view colours points by frequency (blue fast, yellow slow).
        """
        theta = self.thetas[t_index]
        # Frequency from a backward difference (forward at the start).
        if self.n_samples < 2:
            freq = np.full(self.n, self.model.omega)
        else:
            k = t_index if t_index >= 0 else self.n_samples + t_index
            k0 = max(k - 1, 0)
            k1 = k if k > k0 else k0 + 1
            dt = self.ts[k1] - self.ts[k0]
            freq = (self.thetas[k1] - self.thetas[k0]) / dt if dt > 0 else \
                np.full(self.n, self.model.omega)
        ang = np.mod(theta, 2.0 * np.pi)
        return {
            "angles": ang,
            "x": np.cos(ang),
            "y": np.sin(ang),
            "frequency": freq,
        }

    # ------------------------------------------------------------------
    # Asymptotics
    # ------------------------------------------------------------------
    def tail(self, fraction: float = 0.2) -> "OscillatorTrajectory":
        """The final ``fraction`` of the trajectory (asymptotic window)."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        k = max(2, int(np.ceil(self.n_samples * fraction)))
        return OscillatorTrajectory(
            ts=self.ts[-k:], thetas=self.thetas[-k:],
            model=self.model, solution=self.solution, seed=self.seed,
        )

    def asymptotic_gaps(self, fraction: float = 0.1) -> np.ndarray:
        """Time-averaged adjacent phase gaps over the final window."""
        tail = self.tail(fraction)
        return tail.phase_differences().mean(axis=0)

    def mean_frequency(self) -> np.ndarray:
        """Average frequency of each oscillator over the whole run."""
        span = self.ts[-1] - self.ts[0]
        if span <= 0:
            return np.full(self.n, np.nan)
        return (self.thetas[-1] - self.thetas[0]) / span

    def resample(self, n_points: int) -> "OscillatorTrajectory":
        """Uniform-mesh resample via the solver's dense output."""
        if self.solution is None or self.solution.dense is None:
            ts = np.linspace(self.ts[0], self.ts[-1], n_points)
            thetas = np.empty((n_points, self.n))
            for k in range(self.n):
                thetas[:, k] = np.interp(ts, self.ts, self.thetas[:, k])
            return OscillatorTrajectory(ts=ts, thetas=thetas, model=self.model,
                                        solution=self.solution, seed=self.seed)
        sol = self.solution.resample(n_points)
        return OscillatorTrajectory(ts=sol.ts, thetas=sol.ys, model=self.model,
                                    solution=self.solution, seed=self.seed)
