"""Sharded campaign executor: multiprocess solves with caching/resume.

Runs a compiled :class:`~repro.runs.plan.Plan`:

1. **cache probe** — with a :class:`~repro.runs.cache.ResultCache` and
   ``resume=True`` (the default), every shard whose key is already
   stored is loaded instead of solved.  A finished campaign replays as
   a pure cache hit (zero solves — asserted by tests); a killed one
   resumes from its completed shards.
2. **execution** — pending shards run inline (``jobs=1``) or through a
   ``ProcessPoolExecutor``.  A shard solve is a pure function of its
   payload (models, seeds, and initial states are rebuilt from the spec
   dicts inside the worker; per-member seeds were fixed at expansion
   time), so the worker count can never change the bits — ``jobs=1``
   and ``jobs=8`` produce identical results, and every completed shard
   is persisted immediately, making the campaign kill-safe.
3. **assembly** — member results are ordered by their global member
   index, independent of shard completion order.

Two executor properties make the sharding actually pay (PR 5):

* **worker thread pinning** — pool workers start through an initializer
  that pins ``OMP_NUM_THREADS`` / the BLAS thread knobs / the kernels'
  own ``POM_NUM_THREADS`` to the per-shard ``threads`` count (default
  1), so ``jobs x threads`` never oversubscribes the machine.  The
  compiled kernels read ``POM_NUM_THREADS`` at call time, so the pin is
  effective even under the fork start method.
* **shared-memory transport** — with ``transport="shm"`` (the default)
  a worker writes its ``(R, n_t, N)`` trajectory stack into a
  ``multiprocessing.shared_memory`` segment named after the shard key
  and returns only a tiny layout descriptor through the pool; the
  parent maps the segment, copies the arrays out, and unlinks it.  That
  replaces pickling hundreds of megabytes through the result pipe.
  ``transport="pickle"`` keeps the plain round-trip (the
  cross-checking/debug path).  Transport never changes the bits.

``progress`` receives one event dict per completed shard (``cached``
True/False), which the CLI renders as a live campaign log.
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Callable

import numpy as np

from ..core import OscillatorTrajectory, simulate_grid
from ..kernels import THREADS_ENV_VAR
from ..metrics.streaming import StreamingObserver, parse_trajectories
from .cache import ResultCache
from .faults import FaultInjector, ensure_shared_state_dir, injector_from_env
from .plan import Plan, compile_plan
from .spec import MemberSpec, ScenarioSpec

__all__ = ["MemberResult", "RunResult", "TRANSPORTS", "collect_cached",
           "drain_queue", "execute_shard", "reclaim_stale_segments",
           "run_plan", "run_plan_queue", "run_spec"]

#: shard-result transports accepted by ``run_plan(transport=...)``
TRANSPORTS = ("shm", "pickle")

#: thread-count environment knobs pinned inside pool workers
_PIN_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: shared-memory array alignment (matches the compiled kernels' scratch)
_SHM_ALIGN = 64


def _worker_env(threads: int | None) -> dict[str, str]:
    """Environment pins for pool workers: ``threads`` each, default 1."""
    t = 1 if threads is None else int(threads)
    env = {var: str(t) for var in _PIN_ENV_VARS}
    env[THREADS_ENV_VAR] = str(t)
    return env


def _init_worker(env: dict) -> None:
    """Pool-worker initializer: apply the thread pins before any solve."""
    os.environ.update(env)


def execute_shard(payload: dict, threads: int | None = None) -> dict:
    """Solve one shard (top-level so worker processes can import it).

    Returns the arrays the cache stores: the global member ``indices``
    and the solve wall-clock, plus — depending on the payload —

    * ``ts`` and the stacked member phases ``thetas (R, n_t, N)`` when
      ``trajectories`` is ``"full"`` (default) or ``"stride:K"``
      (thinned retention); metric-only shards
      (``trajectories="none"``) carry **no** trajectory arrays at all,
    * streamed metric arrays (``metrics_ts`` + ``metric_<name>``,
      kilobyte-scale) when the payload declares ``metrics``, folded by
      a :class:`~repro.metrics.streaming.StreamingObserver` per
      accepted solver step over the ``(R, N)`` super-state.

    ``threads`` is the in-kernel thread count (pool workers leave it
    ``None`` and inherit the pinned ``POM_NUM_THREADS`` instead); it
    never changes the bits, so it stays out of the payload and the
    cache key.
    """
    t0 = time.perf_counter()
    members = [MemberSpec.from_dict(m) for m in payload["members"]]
    models = [m.build_model() for m in members]
    n = models[0].n
    theta0s = np.stack([m.build_theta0(n) for m in members])
    solver = payload["solver"]
    metrics = tuple(payload.get("metrics") or ())
    trajectories = payload.get("trajectories", "full")
    observer = StreamingObserver(models, metrics) if metrics else None
    trajs = simulate_grid(
        models, payload["t_end"],
        seeds=[m.seed for m in members],
        theta0s=theta0s,
        method=solver["method"],
        dt=solver["dt"],
        rtol=solver["rtol"],
        atol=solver["atol"],
        n_samples=solver.get("n_samples"),
        threads=threads,
        observer=observer,
        record=parse_trajectories(trajectories),
    )
    out = {
        "indices": np.asarray([m.index for m in members], dtype=np.int64),
    }
    if trajectories != "none":
        out["ts"] = trajs[0].ts
        out["thetas"] = np.stack([t.thetas for t in trajs])
    if observer is not None:
        out.update(observer.finalize())
    out["seconds"] = time.perf_counter() - t0
    return out


def _shm_layout(arrays: dict) -> tuple[dict, int]:
    """Aligned offsets for packing ``arrays`` into one segment."""
    layout = {}
    offset = 0
    for name, arr in arrays.items():
        offset = -(-offset // _SHM_ALIGN) * _SHM_ALIGN
        layout[name] = {"dtype": arr.dtype.str, "shape": arr.shape,
                        "offset": offset}
        offset += arr.nbytes
    return layout, max(offset, 1)


def _unregister_shm(seg: shared_memory.SharedMemory) -> None:
    """Detach a freshly *created* ``seg`` from the resource tracker.

    The parent owns the segment lifetime (it unlinks after assembly);
    without this, the worker-side tracker would destroy or complain
    about segments that outlive the worker by design.
    """
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration.

    Attaching never registers on Python < 3.13; newer versions grew a
    ``track`` knob (and register by default), so pass it when accepted.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _execute_shard_pickle(payload: dict, index: int) -> dict:
    """Pool-worker entry for the pickle transport (with fault hooks)."""
    injector_from_env().fire("shard-start", shard=index)
    return execute_shard(payload)


def _execute_shard_shm(payload: dict, shm_name: str,
                       index: int | None = None) -> dict:
    """Pool-worker entry for the shared-memory transport.

    Solves the shard, writes the result arrays into a fresh shared
    segment ``shm_name``, and returns only the layout descriptor — the
    parent maps the segment instead of unpickling the arrays.  The
    ``POM_FAULTS`` chaos hooks fire here (worker side), never in the
    orchestrating parent.
    """
    faults = injector_from_env()
    faults.fire("shard-start", shard=index)
    data = execute_shard(payload)
    # Pack whatever arrays the shard produced — trajectory stacks,
    # streamed metric arrays, or both.
    arrays = {k: np.ascontiguousarray(v) for k, v in data.items()
              if isinstance(v, np.ndarray)}
    layout, size = _shm_layout(arrays)
    t0 = time.perf_counter()
    try:
        seg = shared_memory.SharedMemory(name=shm_name, create=True,
                                         size=size)
    except FileExistsError:
        # Stale segment from a killed earlier run with the same name:
        # reclaim it.
        stale = _attach_shm(shm_name)
        stale.close()
        stale.unlink()
        seg = shared_memory.SharedMemory(name=shm_name, create=True,
                                         size=size)
    try:
        for k, arr in arrays.items():
            spec = layout[k]
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf,
                             offset=spec["offset"])
            dst[...] = arr
    finally:
        if faults and faults.fire("shm-written", shard=index):
            # ``drop-shm`` chaos: the segment vanishes between the
            # worker's write and the parent's collect — the parent must
            # degrade to an inline re-solve, not crash the campaign.
            # (Unlink while still tracker-registered: one clean
            # unregister, no tracker noise.)
            seg.unlink()
        else:
            _unregister_shm(seg)
        seg.close()
    return {
        "shm": shm_name,
        "layout": layout,
        "seconds": data["seconds"],
        "write_s": time.perf_counter() - t0,
        "worker_omp": os.environ.get("OMP_NUM_THREADS"),
    }


def _collect_shm(meta: dict) -> dict:
    """Parent side of the shared-memory transport: map, copy, unlink."""
    t0 = time.perf_counter()
    seg = _attach_shm(meta["shm"])
    try:
        data = {}
        for k, spec in meta["layout"].items():
            src = np.ndarray(tuple(spec["shape"]),
                             dtype=np.dtype(spec["dtype"]),
                             buffer=seg.buf, offset=spec["offset"])
            # Own copy — the segment is unlinked below.
            data[k] = np.array(src)
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
    data["seconds"] = meta["seconds"]
    data["transport_s"] = (meta.get("write_s", 0.0)
                           + (time.perf_counter() - t0))
    data["worker_omp"] = meta.get("worker_omp")
    return data


def _cleanup_shm(names) -> None:
    """Best-effort unlink of leftover segments after a failed run."""
    for name in names:
        try:
            seg = _attach_shm(name)
        except FileNotFoundError:
            continue
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass


def reclaim_stale_segments(shm_dir: str = "/dev/shm") -> list[str]:
    """Unlink ``pom-*`` segments whose owning process is dead.

    Segment names embed the orchestrating PID (``pom-<pid>-<shard>-
    <key>``), so a run whose parent was SIGKILLed mid-transfer leaves
    segments no later run would ever collect by name.  Every pool run
    starts with this sweep; returns the reclaimed names.  A no-op on
    hosts without a POSIX shm directory.
    """
    reclaimed: list[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - non-Linux
        return reclaimed
    for name in names:
        parts = name.split("-")
        if parts[0] != "pom" or len(parts) < 4:
            continue
        try:
            pid = int(parts[1])
        except ValueError:
            continue
        try:
            os.kill(pid, 0)
            continue  # owner alive: in use by a concurrent run
        except ProcessLookupError:
            pass
        except PermissionError:  # pragma: no cover - other-user process
            continue
        try:
            seg = _attach_shm(name)
        except FileNotFoundError:
            continue
        seg.close()
        try:
            seg.unlink()
            reclaimed.append(name)
        except FileNotFoundError:  # pragma: no cover - lost a race
            pass
    return reclaimed


@dataclass
class MemberResult:
    """One grid point's solved results plus its provenance.

    ``trajectory()`` rebuilds the declarative model from the member's
    spec dict, so results that crossed a process boundary (or came out
    of the cache) still carry full model metadata.  For metric-only
    campaigns (``trajectories="none"``) ``ts``/``thetas`` are ``None``
    and the streamed reductions live in ``metrics`` (keyed by metric
    name, on the ``metrics_ts`` observation mesh).
    """

    member: MemberSpec
    ts: np.ndarray | None
    thetas: np.ndarray | None
    metrics_ts: np.ndarray | None = None
    metrics: dict = field(default_factory=dict)

    @property
    def index(self) -> int:
        """Global member index (expansion order)."""
        return self.member.index

    @property
    def params(self) -> dict:
        """The member's axis coordinates."""
        return self.member.params

    @property
    def seed(self) -> int:
        """Noise-realisation seed."""
        return self.member.seed

    @property
    def has_trajectory(self) -> bool:
        """Whether this member carries phase states (any capture mode)."""
        return self.thetas is not None

    def trajectory(self) -> OscillatorTrajectory:
        """The solved phases as a full :class:`OscillatorTrajectory`."""
        if self.thetas is None:
            raise ValueError(
                f"member {self.index} has no trajectory (the campaign "
                'ran with trajectories="none"; re-run with '
                'trajectories="full" or consume the streamed metrics)')
        return OscillatorTrajectory(ts=self.ts, thetas=self.thetas,
                                    model=self.member.build_model(),
                                    seed=self.member.seed)


@dataclass
class RunResult:
    """Outcome of a campaign execution.

    Attributes
    ----------
    spec:
        The campaign that ran.
    members:
        Per-member results in global member order.
    n_shards, n_executed, n_cached:
        Shard accounting — ``n_executed == 0`` is the pure-cache-hit
        replay the acceptance tests assert.
    wall_s:
        End-to-end wall-clock of :func:`run_plan`.
    solve_s:
        Summed in-worker solve time of the executed shards.
    transport_s:
        Summed measured result-transport time (shared-memory write +
        map/copy); 0 for the inline and pickle paths, where the
        transport cost hides in ``wall_s - solve_s``.
    transport:
        The transport that moved executed shard results across the pool
        (``"shm"`` | ``"pickle"``), or ``None`` when no pool ran.
    worker_omp:
        ``OMP_NUM_THREADS`` as reported from inside a pool worker (the
        pinning witness asserted by CI), or ``None`` when no pool ran.
    queue:
        Durable-queue execution report (:meth:`WorkQueue.describe` plus
        worker accounting) when the campaign ran through
        :func:`run_plan_queue`; ``None`` for in-process runs.  The
        ``retried`` map (shard index -> attempts) is how recovered
        worker deaths stay visible in the run report.
    """

    spec: ScenarioSpec
    members: list[MemberResult]
    n_shards: int = 0
    n_executed: int = 0
    n_cached: int = 0
    wall_s: float = 0.0
    solve_s: float = 0.0
    transport_s: float = 0.0
    transport: str | None = None
    worker_omp: str | None = None
    queue: dict | None = field(default=None)

    def __len__(self) -> int:
        return len(self.members)

    def trajectories(self) -> list[OscillatorTrajectory]:
        """All member trajectories, in member (expansion) order."""
        return [m.trajectory() for m in self.members]

    def summary_table(self) -> dict:
        """Axis columns plus standard sync/streamed metrics per member.

        Columns: one per axis path, plus ``seed``; when trajectories
        were captured, ``final_spread``, ``mean_abs_gap``, ``r_final``,
        and ``state`` from :func:`repro.metrics.sync.classify`; when the
        spec declared streaming metrics, one summary column per metric
        (``<name>_final`` for the series reductions,
        ``wavefront_reached`` rank counts, ``phase_histogram_peak`` bin
        indices) in declaration order.  A trajectory-mode and a
        metric-only campaign with the same ``metrics`` therefore agree
        bit-for-bit on the shared metric columns — the CI stream-smoke
        invariant.
        """
        from ..metrics.streaming import SERIES_METRICS
        from ..metrics.sync import classify

        # ``seed`` already has a dedicated column; don't duplicate it
        # when it is also swept as an axis.
        paths = [p for p, _ in self.spec.axes if p != "seed"]
        table: dict[str, list] = {p: [] for p in paths}
        table["seed"] = []
        has_traj = all(m.thetas is not None for m in self.members)
        if has_traj:
            table.update({"final_spread": [], "mean_abs_gap": [],
                          "r_final": [], "state": []})
        metric_names = [name for name in getattr(self.spec, "metrics", ())
                        if all(name in m.metrics for m in self.members)]
        for name in metric_names:
            if name in SERIES_METRICS:
                table[f"{name}_final"] = []
            elif name == "wavefront":
                table["wavefront_reached"] = []
            elif name == "phase_histogram":
                table["phase_histogram_peak"] = []
        for m in self.members:
            for p in paths:
                table[p].append(m.params.get(p))
            table["seed"].append(m.seed)
            if has_traj:
                model = m.member.build_model()
                verdict = classify(m.ts, m.thetas, model.omega)
                table["final_spread"].append(verdict.final_spread)
                table["mean_abs_gap"].append(verdict.mean_abs_gap)
                table["r_final"].append(verdict.r_final)
                table["state"].append(verdict.state.value)
            for name in metric_names:
                arr = m.metrics[name]
                if name in SERIES_METRICS:
                    table[f"{name}_final"].append(float(arr[-1]))
                elif name == "wavefront":
                    table["wavefront_reached"].append(
                        int(np.isfinite(arr).sum()))
                elif name == "phase_histogram":
                    table["phase_histogram_peak"].append(
                        int(np.argmax(arr)))
        return table

    def _npz_arrays(self) -> dict[str, np.ndarray]:
        """The canonical ``.npz`` payload: spec hash + per-member arrays.

        Trajectory campaigns contribute ``ts_<i>`` / ``thetas_<i>``;
        campaigns with streamed metrics contribute ``metrics_ts_<i>``
        plus ``metric_<name>_<i>`` (meshes are per-member because
        adaptive shards may differ); metric-only campaigns carry no
        trajectory arrays at all.
        """
        arrays: dict[str, np.ndarray] = {
            "spec_hash": np.frombuffer(
                self.spec.content_hash().encode(), dtype=np.uint8),
        }
        for m in self.members:
            if m.ts is not None:
                arrays[f"ts_{m.index}"] = m.ts
                arrays[f"thetas_{m.index}"] = m.thetas
            if m.metrics_ts is not None:
                arrays[f"metrics_ts_{m.index}"] = m.metrics_ts
            for name, arr in m.metrics.items():
                arrays[f"metric_{name}_{m.index}"] = arr
        return arrays

    def save_npz(self, path: str | Path) -> Path:
        """Write every member's arrays to one ``.npz`` file.

        Arrays are named ``ts_<index>`` / ``thetas_<index>`` (and/or
        ``metrics_ts_<index>`` / ``metric_<name>_<index>`` for streamed
        metrics); the file also records the spec hash, so two runs of
        the same campaign (any ``jobs=``) produce comparable artefacts.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, **self._npz_arrays())
        return path

    def npz_bytes(self) -> bytes:
        """The :meth:`save_npz` artefact as in-memory bytes.

        Same arrays, same names — the campaign service streams this
        over HTTP and stores it content-addressed without touching the
        filesystem twice.  Zip container metadata (timestamps) may
        differ between writes; the *decoded arrays* are the identity
        that matters, and they are bit-equal to a ``save_npz`` file.
        """
        import io

        buf = io.BytesIO()
        np.savez(buf, **self._npz_arrays())
        return buf.getvalue()


@dataclass
class _ShardOutcome:
    data: dict
    cached: bool


def _assemble_members(
        plan: Plan,
        outcomes: dict[int, _ShardOutcome]) -> tuple[list[MemberResult],
                                                     float, float]:
    """Fan shard outcomes back out to ordered member results.

    Member order is the expansion order, never completion order — the
    bit-for-bit anchor across ``jobs=`` settings and executors.
    Members are rebuilt from the shard payloads (no second grid
    expansion).  Returns ``(members, solve_s, transport_s)``.
    """
    results: list[MemberResult] = []
    solve_s = 0.0
    transport_s = 0.0
    for shard in plan.shards:
        out = outcomes[shard.index]
        if not out.cached:
            solve_s += float(out.data.get("seconds", 0.0))
            transport_s += float(out.data.get("transport_s", 0.0))
        ts = out.data.get("ts")
        thetas = out.data.get("thetas")
        metrics_ts = out.data.get("metrics_ts")
        metric_names = [name for name in shard.payload.get("metrics", ())
                        if f"metric_{name}" in out.data]
        members_by_index = {m["index"]: MemberSpec.from_dict(m)
                            for m in shard.payload["members"]}
        for row, gindex in enumerate(out.data["indices"].tolist()):
            metrics = {name: out.data[f"metric_{name}"][row]
                       for name in metric_names}
            results.append(MemberResult(
                member=members_by_index[int(gindex)],
                ts=ts,
                thetas=thetas[row] if thetas is not None else None,
                metrics_ts=metrics_ts,
                metrics=metrics))
    results.sort(key=lambda m: m.index)
    return results, solve_s, transport_s


def collect_cached(plan: Plan, cache: ResultCache) -> RunResult | None:
    """Assemble a campaign purely from cached shard solves, or ``None``.

    The zero-execution path behind the campaign service's result
    endpoint: every shard of ``plan`` must load (checksum-verified)
    from ``cache``.  Any missing or corrupt shard returns ``None`` —
    the caller decides whether to enqueue, requeue, or 409.  Assembly
    is the same member-ordered fan-out as :func:`run_plan`, so the
    result is bit-identical to an executed campaign.
    """
    t0 = time.perf_counter()
    outcomes: dict[int, _ShardOutcome] = {}
    for shard in plan.shards:
        data = cache.load(shard.key)
        if data is None:
            return None
        outcomes[shard.index] = _ShardOutcome(data=data, cached=True)
    results, solve_s, _ = _assemble_members(plan, outcomes)
    return RunResult(
        spec=plan.spec,
        members=results,
        n_shards=plan.n_shards,
        n_executed=0,
        n_cached=plan.n_shards,
        wall_s=time.perf_counter() - t0,
        solve_s=solve_s,
    )


def run_plan(plan: Plan, *,
             jobs: int = 1,
             cache: ResultCache | str | Path | None = None,
             resume: bool = True,
             threads: int | None = None,
             transport: str = "shm",
             progress: Callable[[dict], None] | None = None) -> RunResult:
    """Execute a compiled plan; see the module docstring for semantics.

    Parameters
    ----------
    plan:
        Output of :func:`~repro.runs.plan.compile_plan`.
    jobs:
        Worker processes; ``1`` runs inline (no pool).
    cache:
        Result cache (directory path or :class:`ResultCache`); solved
        shards are stored there and — with ``resume`` — reused.
    resume:
        Reuse cached shard solves.  ``False`` recomputes everything
        (and overwrites the stored artefacts): the escape hatch for a
        cache poisoned by an unversioned numerics change.
    threads:
        In-kernel thread count per shard solve.  ``None`` pins pool
        workers to 1 thread each (``jobs x threads`` never
        oversubscribes) and lets the inline path resolve
        ``POM_NUM_THREADS``.  Never affects results or cache keys.
    transport:
        How executed shard results cross the pool: ``"shm"`` (default,
        shared-memory segments) or ``"pickle"`` (the plain round-trip).
        Bit-identical by construction.
    progress:
        Callback receiving one event dict per completed shard.
    """
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; available: "
            f"{', '.join(TRANSPORTS)}")
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    t0 = time.perf_counter()
    outcomes: dict[int, _ShardOutcome] = {}
    pending = []
    for shard in plan.shards:
        data = cache.load(shard.key) if (cache is not None and resume) \
            else None
        if data is not None:
            outcomes[shard.index] = _ShardOutcome(data=data, cached=True)
        else:
            pending.append(shard)

    done = 0
    total = plan.n_shards

    def _notify(shard, data, cached: bool) -> None:
        if progress is not None:
            progress({
                "kind": "shard",
                "shard": shard.index,
                "members": shard.n_members,
                "cached": cached,
                "seconds": float(data.get("seconds", 0.0)),
                "done": done,
                "total": total,
            })

    for shard in plan.shards:
        if shard.index in outcomes:
            done += 1
            _notify(shard, outcomes[shard.index].data, True)

    transport_used: str | None = None
    worker_omp: str | None = None
    if pending:
        if jobs == 1 or len(pending) == 1:
            for shard in pending:
                data = execute_shard(shard.payload, threads=threads)
                if cache is not None:
                    cache.save(shard.key, data)
                outcomes[shard.index] = _ShardOutcome(data=data,
                                                      cached=False)
                done += 1
                _notify(shard, data, False)
        else:
            transport_used = transport
            reclaim_stale_segments()
            if injector_from_env():
                # Chaos run: all workers (and any inline fallback here)
                # must share one fire-count budget.
                ensure_shared_state_dir(
                    tempfile.mkdtemp(prefix="pom-faults-"))
            shm_names = {}
            if transport == "shm":
                shm_names = {
                    s.index: f"pom-{os.getpid()}-{s.index}-{s.key[:8]}"
                    for s in pending
                }
            try:
                with ProcessPoolExecutor(
                        max_workers=min(jobs, len(pending)),
                        initializer=_init_worker,
                        initargs=(_worker_env(threads),)) as pool:
                    if transport == "shm":
                        futures = {
                            pool.submit(_execute_shard_shm, s.payload,
                                        shm_names[s.index], s.index): s
                            for s in pending
                        }
                    else:
                        futures = {
                            pool.submit(_execute_shard_pickle, s.payload,
                                        s.index): s
                            for s in pending
                        }
                    remaining = set(futures)
                    while remaining:
                        finished, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED)
                        for fut in finished:
                            shard = futures[fut]
                            if transport == "shm":
                                try:
                                    data = _collect_shm(fut.result())
                                    worker_omp = data.get("worker_omp")
                                except FileNotFoundError:
                                    # Segment vanished between write and
                                    # collect (dropped/reclaimed): the
                                    # solve is pure, so re-run it here.
                                    warnings.warn(
                                        f"shard {shard.index}: shared-"
                                        "memory result segment lost; "
                                        "re-solving inline",
                                        RuntimeWarning)
                                    data = execute_shard(shard.payload,
                                                         threads=threads)
                                shm_names.pop(shard.index, None)
                            else:
                                data = fut.result()
                            # Persist immediately: a kill after this point
                            # loses at most the in-flight shards.
                            if cache is not None:
                                cache.save(shard.key, data)
                            outcomes[shard.index] = _ShardOutcome(
                                data=data, cached=False)
                            done += 1
                            _notify(shard, data, False)
            except BrokenProcessPool:
                # A worker died abnormally (SIGKILL, OOM).  Shard solves
                # are pure functions, so the campaign degrades to inline
                # execution of whatever the pool did not finish instead
                # of losing the run.
                missing = [s for s in pending if s.index not in outcomes]
                warnings.warn(
                    f"worker process died; re-solving {len(missing)} "
                    "unfinished shard(s) inline", RuntimeWarning)
                _cleanup_shm([shm_names.pop(s.index)
                              for s in missing if s.index in shm_names])
                for shard in missing:
                    data = execute_shard(shard.payload, threads=threads)
                    if cache is not None:
                        cache.save(shard.key, data)
                    outcomes[shard.index] = _ShardOutcome(data=data,
                                                          cached=False)
                    done += 1
                    _notify(shard, data, False)
            finally:
                # Uncollected segments (a worker crash, a parent
                # exception mid-assembly) must not outlive the run.
                _cleanup_shm(shm_names.values())

    results, solve_s, transport_s = _assemble_members(plan, outcomes)

    return RunResult(
        spec=plan.spec,
        members=results,
        n_shards=total,
        n_executed=len(pending),
        n_cached=total - len(pending),
        wall_s=time.perf_counter() - t0,
        solve_s=solve_s,
        transport_s=transport_s,
        transport=transport_used,
        worker_omp=worker_omp,
    )


# ======================================================================
# durable-queue execution (leases, heartbeats, retry, quarantine)
# ======================================================================

class _Heartbeat:
    """Background lease keeper for one claimed shard.

    Beats every ``every`` seconds until stopped.  Stops beating on its
    own when the per-shard ``timeout`` elapses (so the lease expires
    and the reaper hands the shard to another worker) or when a beat
    reports the lease already lost (``lost``) — the fencing signals the
    drain loop inspects after the solve returns.
    """

    def __init__(self, queue, lease, *, every: float, lease_ttl: float,
                 timeout: float | None) -> None:
        import threading

        self.queue = queue
        self.lease = lease
        self.every = every
        self.lease_ttl = lease_ttl
        self.timeout = timeout
        self.lost = False
        self.timed_out = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        start = time.monotonic()
        while not self._stop.wait(self.every):
            if self.timeout is not None \
                    and time.monotonic() - start > self.timeout:
                self.timed_out = True
                return
            if not self.queue.heartbeat(self.lease.key, self.lease.lease_id,
                                        lease_ttl=self.lease_ttl):
                self.lost = True
                return

    def __enter__(self) -> _Heartbeat:
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def drain_queue(queue, cache: ResultCache, *,
                worker: str = "worker",
                lease_ttl: float = 30.0,
                heartbeat_every: float | None = None,
                timeout: float | None = None,
                max_shards: int | None = None,
                probe_cache: bool = True,
                faults: FaultInjector | None = None,
                progress: Callable[[dict], None] | None = None,
                poll: float = 0.2) -> dict:
    """Worker loop: claim, heartbeat, solve, persist, complete.

    The body of ``pom worker`` and of the processes
    :func:`run_plan_queue` spawns.  Per shard: claim a lease, probe the
    shared cache (a hit completes without solving — this is how resumed
    campaigns and fenced stragglers converge), otherwise solve under a
    heartbeat, persist to the cache **before** completing (so a crash
    between the two costs one redundant solve, never a result), and
    complete fenced on the lease id.  Failures are recorded through
    :meth:`WorkQueue.fail` — retry with exponential backoff, then
    quarantine with the captured traceback.

    ``timeout`` bounds the heartbeat span of one solve: past it the
    lease is allowed to lapse, another worker re-claims (the backoff
    ladder applies), and this worker's eventual result is fenced out —
    though whatever it manages to cache still serves the re-claimer.

    Returns counts: ``solved``, ``cache_hits``, ``failed``, ``fenced``,
    ``quarantined``, ``stalled``.
    """
    import traceback as tb_mod

    if faults is None:
        faults = injector_from_env()
    every = heartbeat_every if heartbeat_every is not None \
        else max(lease_ttl / 3.0, 0.05)
    stats = {"solved": 0, "cache_hits": 0, "failed": 0, "fenced": 0,
             "quarantined": 0, "stalled": 0}

    def _notify(lease, outcome: str, seconds: float = 0.0) -> None:
        if progress is not None:
            progress({"kind": "worker-shard", "worker": worker,
                      "shard": lease.index, "attempt": lease.attempts,
                      "outcome": outcome, "seconds": seconds})

    while max_shards is None or \
            stats["solved"] + stats["cache_hits"] < max_shards:
        queue.reap()
        lease = queue.claim(worker, lease_ttl=lease_ttl)
        if lease is None:
            if queue.unfinished() == 0:
                break
            # Everything claimable is leased out or inside a retry
            # backoff window; linger — leases may be reaped back.
            time.sleep(poll)
            continue
        try:
            fired = faults.fire("shard-start", shard=lease.index)
            stall = next((f for f in fired if f.kind == "stall"), None)
            if stall is not None:
                # A hung/partitioned worker: no heartbeats while the
                # lease runs out under us.
                stats["stalled"] += 1
                time.sleep(stall.secs if stall.secs is not None
                           else 2.0 * lease_ttl + 0.5)
            if probe_cache:
                data = cache.load(lease.key)
                if data is not None:
                    if queue.complete(lease.key, lease.lease_id,
                                      cached=True, seconds=0.0):
                        stats["cache_hits"] += 1
                        _notify(lease, "cache-hit")
                    else:
                        stats["fenced"] += 1
                        _notify(lease, "fenced")
                    continue
            with _Heartbeat(queue, lease, every=every, lease_ttl=lease_ttl,
                            timeout=timeout) as hb:
                data = execute_shard(lease.payload)
            cache.save(lease.key, data)
            for f in faults.fire("cache-saved", shard=lease.index):
                if f.kind == "corrupt-cache":
                    # Torn write chaos: truncate the blob we just
                    # stored; the checksummed store must flag it and
                    # the orchestrator must re-run the shard.
                    path = cache.store.path_for(lease.key)
                    path.write_bytes(path.read_bytes()[:64])
            if hb.timed_out:
                queue.fail(lease.key, lease.lease_id,
                           f"solve exceeded timeout={timeout}s "
                           "(result cached; retry will hit it)")
                stats["failed"] += 1
                _notify(lease, "timeout", float(data.get("seconds", 0.0)))
            elif queue.complete(lease.key, lease.lease_id, cached=False,
                                seconds=float(data.get("seconds", 0.0))):
                stats["solved"] += 1
                _notify(lease, "solved", float(data.get("seconds", 0.0)))
            else:
                stats["fenced"] += 1
                _notify(lease, "fenced", float(data.get("seconds", 0.0)))
        except Exception:
            verdict = queue.fail(lease.key, lease.lease_id,
                                 tb_mod.format_exc())
            if verdict == "quarantined":
                stats["quarantined"] += 1
            elif verdict == "retry":
                stats["failed"] += 1
            else:
                stats["fenced"] += 1
            _notify(lease, verdict)
    return stats


def _queue_worker_entry(queue_path: str, cache_root: str,
                        opts: dict) -> None:
    """Top-level entry for spawned queue-worker processes."""
    from .queue import WorkQueue

    os.environ.update(_worker_env(opts.get("threads")))
    queue = WorkQueue(queue_path, backoff=opts.get("backoff", 0.5))
    cache = ResultCache(cache_root)
    drain_queue(queue, cache,
                worker=opts.get("worker", f"worker-{os.getpid()}"),
                lease_ttl=opts.get("lease_ttl", 30.0),
                heartbeat_every=opts.get("heartbeat_every"),
                timeout=opts.get("timeout"),
                probe_cache=opts.get("probe_cache", True))


def run_plan_queue(plan: Plan, queue_path: str | Path, *,
                   jobs: int = 1,
                   cache: ResultCache | str | Path | None = None,
                   resume: bool = True,
                   threads: int | None = None,
                   lease_ttl: float = 30.0,
                   heartbeat_every: float | None = None,
                   max_attempts: int = 3,
                   backoff: float = 0.5,
                   timeout: float | None = None,
                   progress: Callable[[dict], None] | None = None,
                   poll: float = 0.2) -> RunResult:
    """Execute a plan through a durable work queue (crash-safe).

    Shards become leased messages in a SQLite-backed
    :class:`~repro.runs.queue.WorkQueue` at ``queue_path``; ``jobs``
    worker processes are spawned to drain it (any number of *external*
    ``pom worker`` processes — on this host or any host sharing the
    filesystem — may drain the same queue concurrently).  The
    orchestrator reaps expired leases, respawns dead workers, verifies
    every completed shard is actually loadable from the shared
    content-addressed cache (requeueing any that are not — e.g. a
    corrupt entry from a kill mid-write), and assembles the result.

    The bit-identical contract of :func:`run_plan` holds: shard solves
    are pure, the cache round-trip is exact, and assembly orders by
    member index — so a queue campaign with workers SIGKILLed and
    leases expiring mid-run still equals ``jobs=1``.

    Degradations:

    * an unwritable ``queue_path`` falls back to plain in-process
      execution with a warning (never fails a campaign over a missing
      mount);
    * if workers keep dying past the respawn budget, the orchestrator
      drains the remainder inline (fault injection disabled — the
      orchestrator is the recovery path, not a chaos target).

    Raises ``RuntimeError`` if shards end up quarantined: the campaign
    is incomplete, and the report (also available via ``pom queue``)
    carries each quarantined shard's captured traceback.
    """
    import multiprocessing as mp

    from .queue import (WorkQueue, default_queue_sibling,
                        writable_queue_path)

    if jobs < 1:
        raise ValueError("jobs must be positive")
    queue_path = Path(queue_path)
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    if not writable_queue_path(queue_path):
        warnings.warn(
            f"queue path {queue_path} is not writable; degrading to "
            "in-process execution (no durable queue, no multi-host "
            "workers)", RuntimeWarning)
        return run_plan(plan, jobs=jobs, cache=cache, resume=resume,
                        threads=threads, progress=progress)
    if cache is None:
        # The queue is coordination state; the sibling cache is the
        # shared result tier a resumed/multi-worker campaign converges
        # through.  A queue without a cache cannot be crash-safe.
        cache = ResultCache(default_queue_sibling(queue_path, "cache"))

    t0 = time.perf_counter()
    ensure_shared_state_dir(default_queue_sibling(queue_path, "faults"))
    queue = WorkQueue(queue_path, backoff=backoff)
    queue.enqueue_plan(plan, max_attempts=max_attempts)
    plan_keys = {s.key for s in plan.shards}
    if not resume:
        queue.requeue(plan_keys)

    # Trust-but-verify the prior state: a row marked done whose cached
    # result is missing or corrupt goes back to pending.
    done_at_start: set[str] = set()
    for row in queue.rows():
        if row.key not in plan_keys:
            continue
        if row.state == "done":
            if resume and cache.load(row.key) is not None:
                done_at_start.add(row.key)
            else:
                queue.requeue([row.key])

    worker_opts = {"lease_ttl": lease_ttl,
                   "heartbeat_every": heartbeat_every,
                   "timeout": timeout, "backoff": backoff,
                   "threads": threads, "probe_cache": resume}

    def _spawn(i: int) -> mp.Process:
        opts = dict(worker_opts, worker=f"{os.uname().nodename}-w{i}")
        proc = mp.Process(target=_queue_worker_entry,
                          args=(str(queue_path), str(cache.root), opts),
                          daemon=True)
        proc.start()
        return proc

    total = plan.n_shards
    respawn_budget = 2 * total + 4
    spawned = 0
    workers: list[mp.Process] = []
    seen_done: set[str] = set(done_at_start)
    n_cached = len(done_at_start)
    n_executed = 0
    done = len(done_at_start)

    def _emit(row, cached: bool) -> None:
        if progress is not None:
            shard = plan.shards[row.index]
            progress({"kind": "shard", "shard": row.index,
                      "members": shard.n_members, "cached": cached,
                      "attempts": row.attempts,
                      "seconds": float(row.seconds or 0.0),
                      "done": done, "total": total})

    for row in queue.rows():
        if row.key in done_at_start:
            _emit(row, True)

    verify_rounds = 0
    try:
        while True:
            queue.reap()
            rows = [r for r in queue.rows() if r.key in plan_keys]
            for row in rows:
                if row.state == "done" and row.key not in seen_done:
                    seen_done.add(row.key)
                    done += 1
                    if row.cached:
                        n_cached += 1
                    else:
                        n_executed += 1
                    _emit(row, row.cached)
            unfinished = sum(r.state in ("pending", "leased") for r in rows)
            if unfinished == 0:
                # Drained.  Verify the result tier before declaring
                # victory: `done` in the queue means nothing unless the
                # cached shard actually loads.
                bad = [r for r in rows
                       if r.state == "done" and cache.load(r.key) is None]
                if not bad:
                    break
                verify_rounds += 1
                if verify_rounds > 3:
                    raise RuntimeError(
                        f"{len(bad)} shard result(s) remained unloadable "
                        "after 3 recompute rounds; cache tier is "
                        "persistently failing")
                for r in bad:
                    seen_done.discard(r.key)
                    done -= 1
                    if r.key in done_at_start:
                        done_at_start.discard(r.key)
                        n_cached -= 1
                    elif r.cached:
                        n_cached -= 1
                    else:
                        n_executed -= 1
                queue.requeue([r.key for r in bad])
                continue
            workers = [w for w in workers if w.is_alive()]
            deficit = min(jobs, unfinished) - len(workers)
            while deficit > 0 and spawned < respawn_budget:
                workers.append(_spawn(spawned))
                spawned += 1
                deficit -= 1
            if not workers:
                # Respawn budget exhausted (workers keep dying): the
                # orchestrator is the last line — drain inline with
                # fault injection off.
                drain_queue(queue, cache, worker="orchestrator",
                            lease_ttl=lease_ttl, timeout=timeout,
                            probe_cache=resume,
                            faults=FaultInjector.disabled())
                continue
            time.sleep(poll)
    finally:
        for w in workers:
            if w.is_alive():
                w.terminate()
        for w in workers:
            w.join(timeout=5.0)

    report = queue.describe()
    report["workers"] = jobs
    report["spawned"] = spawned
    quarantined = [{"shard": r.index, "attempts": r.attempts,
                    "error": r.error}
                   for r in queue.quarantined() if r.key in plan_keys]
    if quarantined:
        details = "; ".join(
            f"shard {q['shard']} after {q['attempts']} attempt(s)"
            for q in quarantined)
        raise RuntimeError(
            f"campaign incomplete: {len(quarantined)} shard(s) "
            f"quarantined ({details}); inspect with `pom queue "
            f"{queue_path}` and requeue with --requeue-quarantined")

    outcomes = {}
    for shard in plan.shards:
        data = cache.load(shard.key)
        if data is None:  # pragma: no cover - excluded by verify loop
            raise RuntimeError(
                f"shard {shard.index} missing from cache after drain")
        outcomes[shard.index] = _ShardOutcome(
            data=data, cached=shard.key in done_at_start)
    results, solve_s, _ = _assemble_members(plan, outcomes)

    return RunResult(
        spec=plan.spec,
        members=results,
        n_shards=total,
        n_executed=n_executed,
        n_cached=n_cached,
        wall_s=time.perf_counter() - t0,
        solve_s=solve_s,
        queue=report,
    )


def run_spec(spec: ScenarioSpec, *,
             jobs: int = 1,
             shard_members: int | None = None,
             fuse_topologies: bool | None = None,
             cache: ResultCache | str | Path | None = None,
             resume: bool = True,
             threads: int | None = None,
             transport: str = "shm",
             queue: str | Path | None = None,
             progress: Callable[[dict], None] | None = None,
             **queue_kwargs) -> RunResult:
    """Compile and execute a scenario in one call (the common entry).

    ``fuse_topologies`` is forwarded to
    :func:`~repro.runs.plan.compile_plan` (default ``None``: merge
    same-N topology groups for the fixed-step methods, bit-identical to
    per-group shards).  With ``queue=`` the campaign runs through the
    durable work queue (:func:`run_plan_queue`, which accepts the extra
    ``queue_kwargs`` like ``lease_ttl`` / ``max_attempts``); otherwise
    in-process via :func:`run_plan`.
    """
    plan = compile_plan(spec, shard_members=shard_members,
                        fuse_topologies=fuse_topologies)
    if queue is not None:
        return run_plan_queue(plan, queue, jobs=jobs, cache=cache,
                              resume=resume, threads=threads,
                              progress=progress, **queue_kwargs)
    if queue_kwargs:
        raise TypeError(
            f"unexpected arguments {sorted(queue_kwargs)} "
            "(queue-only options need queue=)")
    return run_plan(plan, jobs=jobs, cache=cache, resume=resume,
                    threads=threads, transport=transport,
                    progress=progress)
