"""Sharded campaign executor: multiprocess solves with caching/resume.

Runs a compiled :class:`~repro.runs.plan.Plan`:

1. **cache probe** — with a :class:`~repro.runs.cache.ResultCache` and
   ``resume=True`` (the default), every shard whose key is already
   stored is loaded instead of solved.  A finished campaign replays as
   a pure cache hit (zero solves — asserted by tests); a killed one
   resumes from its completed shards.
2. **execution** — pending shards run inline (``jobs=1``) or through a
   ``ProcessPoolExecutor``.  A shard solve is a pure function of its
   payload (models, seeds, and initial states are rebuilt from the spec
   dicts inside the worker; per-member seeds were fixed at expansion
   time), so the worker count can never change the bits — ``jobs=1``
   and ``jobs=8`` produce identical results, and every completed shard
   is persisted immediately, making the campaign kill-safe.
3. **assembly** — member results are ordered by their global member
   index, independent of shard completion order.

Two executor properties make the sharding actually pay (PR 5):

* **worker thread pinning** — pool workers start through an initializer
  that pins ``OMP_NUM_THREADS`` / the BLAS thread knobs / the kernels'
  own ``POM_NUM_THREADS`` to the per-shard ``threads`` count (default
  1), so ``jobs x threads`` never oversubscribes the machine.  The
  compiled kernels read ``POM_NUM_THREADS`` at call time, so the pin is
  effective even under the fork start method.
* **shared-memory transport** — with ``transport="shm"`` (the default)
  a worker writes its ``(R, n_t, N)`` trajectory stack into a
  ``multiprocessing.shared_memory`` segment named after the shard key
  and returns only a tiny layout descriptor through the pool; the
  parent maps the segment, copies the arrays out, and unlinks it.  That
  replaces pickling hundreds of megabytes through the result pipe.
  ``transport="pickle"`` keeps the plain round-trip (the
  cross-checking/debug path).  Transport never changes the bits.

``progress`` receives one event dict per completed shard (``cached``
True/False), which the CLI renders as a live campaign log.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Callable

import numpy as np

from ..core import OscillatorTrajectory, simulate_grid
from ..kernels import THREADS_ENV_VAR
from .cache import ResultCache
from .plan import Plan, compile_plan
from .spec import MemberSpec, ScenarioSpec

__all__ = ["MemberResult", "RunResult", "TRANSPORTS", "execute_shard",
           "run_plan", "run_spec"]

#: shard-result transports accepted by ``run_plan(transport=...)``
TRANSPORTS = ("shm", "pickle")

#: thread-count environment knobs pinned inside pool workers
_PIN_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: shared-memory array alignment (matches the compiled kernels' scratch)
_SHM_ALIGN = 64


def _worker_env(threads: int | None) -> dict[str, str]:
    """Environment pins for pool workers: ``threads`` each, default 1."""
    t = 1 if threads is None else int(threads)
    env = {var: str(t) for var in _PIN_ENV_VARS}
    env[THREADS_ENV_VAR] = str(t)
    return env


def _init_worker(env: dict) -> None:
    """Pool-worker initializer: apply the thread pins before any solve."""
    os.environ.update(env)


def execute_shard(payload: dict, threads: int | None = None) -> dict:
    """Solve one shard (top-level so worker processes can import it).

    Returns the arrays the cache stores: the shared time mesh ``ts``,
    the stacked member phases ``thetas (R, n_t, N)``, the global member
    ``indices``, and the solve wall-clock.  ``threads`` is the in-kernel
    thread count (pool workers leave it ``None`` and inherit the pinned
    ``POM_NUM_THREADS`` instead); it never changes the bits, so it stays
    out of the payload and the cache key.
    """
    t0 = time.perf_counter()
    members = [MemberSpec.from_dict(m) for m in payload["members"]]
    models = [m.build_model() for m in members]
    n = models[0].n
    theta0s = np.stack([m.build_theta0(n) for m in members])
    solver = payload["solver"]
    trajs = simulate_grid(
        models, payload["t_end"],
        seeds=[m.seed for m in members],
        theta0s=theta0s,
        method=solver["method"],
        dt=solver["dt"],
        rtol=solver["rtol"],
        atol=solver["atol"],
        n_samples=solver.get("n_samples"),
        threads=threads,
    )
    return {
        "ts": trajs[0].ts,
        "thetas": np.stack([t.thetas for t in trajs]),
        "indices": np.asarray([m.index for m in members], dtype=np.int64),
        "seconds": time.perf_counter() - t0,
    }


def _shm_layout(arrays: dict) -> tuple[dict, int]:
    """Aligned offsets for packing ``arrays`` into one segment."""
    layout = {}
    offset = 0
    for name, arr in arrays.items():
        offset = -(-offset // _SHM_ALIGN) * _SHM_ALIGN
        layout[name] = {"dtype": arr.dtype.str, "shape": arr.shape,
                        "offset": offset}
        offset += arr.nbytes
    return layout, max(offset, 1)


def _unregister_shm(seg: shared_memory.SharedMemory) -> None:
    """Detach a freshly *created* ``seg`` from the resource tracker.

    The parent owns the segment lifetime (it unlinks after assembly);
    without this, the worker-side tracker would destroy or complain
    about segments that outlive the worker by design.
    """
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration.

    Attaching never registers on Python < 3.13; newer versions grew a
    ``track`` knob (and register by default), so pass it when accepted.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _execute_shard_shm(payload: dict, shm_name: str) -> dict:
    """Pool-worker entry for the shared-memory transport.

    Solves the shard, writes the result arrays into a fresh shared
    segment ``shm_name``, and returns only the layout descriptor — the
    parent maps the segment instead of unpickling the arrays.
    """
    data = execute_shard(payload)
    arrays = {k: np.ascontiguousarray(data[k])
              for k in ("ts", "thetas", "indices")}
    layout, size = _shm_layout(arrays)
    t0 = time.perf_counter()
    try:
        seg = shared_memory.SharedMemory(name=shm_name, create=True,
                                         size=size)
    except FileExistsError:
        # Stale segment from a killed earlier run with the same name:
        # reclaim it.
        stale = _attach_shm(shm_name)
        stale.close()
        stale.unlink()
        seg = shared_memory.SharedMemory(name=shm_name, create=True,
                                         size=size)
    try:
        for k, arr in arrays.items():
            spec = layout[k]
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf,
                             offset=spec["offset"])
            dst[...] = arr
    finally:
        _unregister_shm(seg)
        seg.close()
    return {
        "shm": shm_name,
        "layout": layout,
        "seconds": data["seconds"],
        "write_s": time.perf_counter() - t0,
        "worker_omp": os.environ.get("OMP_NUM_THREADS"),
    }


def _collect_shm(meta: dict) -> dict:
    """Parent side of the shared-memory transport: map, copy, unlink."""
    t0 = time.perf_counter()
    seg = _attach_shm(meta["shm"])
    try:
        data = {}
        for k, spec in meta["layout"].items():
            src = np.ndarray(tuple(spec["shape"]),
                             dtype=np.dtype(spec["dtype"]),
                             buffer=seg.buf, offset=spec["offset"])
            # Own copy — the segment is unlinked below.
            data[k] = np.array(src)
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
    data["seconds"] = meta["seconds"]
    data["transport_s"] = (meta.get("write_s", 0.0)
                           + (time.perf_counter() - t0))
    data["worker_omp"] = meta.get("worker_omp")
    return data


def _cleanup_shm(names) -> None:
    """Best-effort unlink of leftover segments after a failed run."""
    for name in names:
        try:
            seg = _attach_shm(name)
        except FileNotFoundError:
            continue
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass


@dataclass
class MemberResult:
    """One grid point's solved trajectory plus its provenance.

    ``trajectory()`` rebuilds the declarative model from the member's
    spec dict, so results that crossed a process boundary (or came out
    of the cache) still carry full model metadata.
    """

    member: MemberSpec
    ts: np.ndarray
    thetas: np.ndarray

    @property
    def index(self) -> int:
        """Global member index (expansion order)."""
        return self.member.index

    @property
    def params(self) -> dict:
        """The member's axis coordinates."""
        return self.member.params

    @property
    def seed(self) -> int:
        """Noise-realisation seed."""
        return self.member.seed

    def trajectory(self) -> OscillatorTrajectory:
        """The solved phases as a full :class:`OscillatorTrajectory`."""
        return OscillatorTrajectory(ts=self.ts, thetas=self.thetas,
                                    model=self.member.build_model(),
                                    seed=self.member.seed)


@dataclass
class RunResult:
    """Outcome of a campaign execution.

    Attributes
    ----------
    spec:
        The campaign that ran.
    members:
        Per-member results in global member order.
    n_shards, n_executed, n_cached:
        Shard accounting — ``n_executed == 0`` is the pure-cache-hit
        replay the acceptance tests assert.
    wall_s:
        End-to-end wall-clock of :func:`run_plan`.
    solve_s:
        Summed in-worker solve time of the executed shards.
    transport_s:
        Summed measured result-transport time (shared-memory write +
        map/copy); 0 for the inline and pickle paths, where the
        transport cost hides in ``wall_s - solve_s``.
    transport:
        The transport that moved executed shard results across the pool
        (``"shm"`` | ``"pickle"``), or ``None`` when no pool ran.
    worker_omp:
        ``OMP_NUM_THREADS`` as reported from inside a pool worker (the
        pinning witness asserted by CI), or ``None`` when no pool ran.
    """

    spec: ScenarioSpec
    members: list[MemberResult]
    n_shards: int = 0
    n_executed: int = 0
    n_cached: int = 0
    wall_s: float = 0.0
    solve_s: float = 0.0
    transport_s: float = 0.0
    transport: str | None = None
    worker_omp: str | None = None

    def __len__(self) -> int:
        return len(self.members)

    def trajectories(self) -> list[OscillatorTrajectory]:
        """All member trajectories, in member (expansion) order."""
        return [m.trajectory() for m in self.members]

    def summary_table(self) -> dict:
        """Axis columns plus standard sync metrics per member.

        Columns: one per axis path, plus ``seed``, ``final_spread``,
        ``mean_abs_gap``, ``r_final``, and ``state`` from
        :func:`repro.metrics.sync.classify` — the generic artefact the
        CLI writes for spec-file campaigns.
        """
        from ..metrics.sync import classify

        # ``seed`` already has a dedicated column; don't duplicate it
        # when it is also swept as an axis.
        paths = [p for p, _ in self.spec.axes if p != "seed"]
        table: dict[str, list] = {p: [] for p in paths}
        table.update({"seed": [], "final_spread": [], "mean_abs_gap": [],
                      "r_final": [], "state": []})
        for m in self.members:
            for p in paths:
                table[p].append(m.params.get(p))
            model = m.member.build_model()
            verdict = classify(m.ts, m.thetas, model.omega)
            table["seed"].append(m.seed)
            table["final_spread"].append(verdict.final_spread)
            table["mean_abs_gap"].append(verdict.mean_abs_gap)
            table["r_final"].append(verdict.r_final)
            table["state"].append(verdict.state.value)
        return table

    def save_npz(self, path: str | Path) -> Path:
        """Write every member's mesh and phases to one ``.npz`` file.

        Arrays are named ``ts_<index>`` / ``thetas_<index>``; the file
        also records the spec hash, so two runs of the same campaign
        (any ``jobs=``) produce comparable artefacts.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {
            "spec_hash": np.frombuffer(
                self.spec.content_hash().encode(), dtype=np.uint8),
        }
        for m in self.members:
            arrays[f"ts_{m.index}"] = m.ts
            arrays[f"thetas_{m.index}"] = m.thetas
        np.savez(path, **arrays)
        return path


@dataclass
class _ShardOutcome:
    data: dict
    cached: bool


def run_plan(plan: Plan, *,
             jobs: int = 1,
             cache: ResultCache | str | Path | None = None,
             resume: bool = True,
             threads: int | None = None,
             transport: str = "shm",
             progress: Callable[[dict], None] | None = None) -> RunResult:
    """Execute a compiled plan; see the module docstring for semantics.

    Parameters
    ----------
    plan:
        Output of :func:`~repro.runs.plan.compile_plan`.
    jobs:
        Worker processes; ``1`` runs inline (no pool).
    cache:
        Result cache (directory path or :class:`ResultCache`); solved
        shards are stored there and — with ``resume`` — reused.
    resume:
        Reuse cached shard solves.  ``False`` recomputes everything
        (and overwrites the stored artefacts): the escape hatch for a
        cache poisoned by an unversioned numerics change.
    threads:
        In-kernel thread count per shard solve.  ``None`` pins pool
        workers to 1 thread each (``jobs x threads`` never
        oversubscribes) and lets the inline path resolve
        ``POM_NUM_THREADS``.  Never affects results or cache keys.
    transport:
        How executed shard results cross the pool: ``"shm"`` (default,
        shared-memory segments) or ``"pickle"`` (the plain round-trip).
        Bit-identical by construction.
    progress:
        Callback receiving one event dict per completed shard.
    """
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; available: "
            f"{', '.join(TRANSPORTS)}")
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    t0 = time.perf_counter()
    outcomes: dict[int, _ShardOutcome] = {}
    pending = []
    for shard in plan.shards:
        data = cache.load(shard.key) if (cache is not None and resume) \
            else None
        if data is not None:
            outcomes[shard.index] = _ShardOutcome(data=data, cached=True)
        else:
            pending.append(shard)

    done = 0
    total = plan.n_shards

    def _notify(shard, data, cached: bool) -> None:
        if progress is not None:
            progress({
                "kind": "shard",
                "shard": shard.index,
                "members": shard.n_members,
                "cached": cached,
                "seconds": float(data.get("seconds", 0.0)),
                "done": done,
                "total": total,
            })

    for shard in plan.shards:
        if shard.index in outcomes:
            done += 1
            _notify(shard, outcomes[shard.index].data, True)

    transport_used: str | None = None
    worker_omp: str | None = None
    if pending:
        if jobs == 1 or len(pending) == 1:
            for shard in pending:
                data = execute_shard(shard.payload, threads=threads)
                if cache is not None:
                    cache.save(shard.key, data)
                outcomes[shard.index] = _ShardOutcome(data=data,
                                                      cached=False)
                done += 1
                _notify(shard, data, False)
        else:
            transport_used = transport
            shm_names = {}
            if transport == "shm":
                shm_names = {
                    s.index: f"pom-{os.getpid()}-{s.index}-{s.key[:8]}"
                    for s in pending
                }
            try:
                with ProcessPoolExecutor(
                        max_workers=min(jobs, len(pending)),
                        initializer=_init_worker,
                        initargs=(_worker_env(threads),)) as pool:
                    if transport == "shm":
                        futures = {
                            pool.submit(_execute_shard_shm, s.payload,
                                        shm_names[s.index]): s
                            for s in pending
                        }
                    else:
                        futures = {pool.submit(execute_shard, s.payload): s
                                   for s in pending}
                    remaining = set(futures)
                    while remaining:
                        finished, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED)
                        for fut in finished:
                            shard = futures[fut]
                            if transport == "shm":
                                data = _collect_shm(fut.result())
                                shm_names.pop(shard.index, None)
                                worker_omp = data.get("worker_omp")
                            else:
                                data = fut.result()
                            # Persist immediately: a kill after this point
                            # loses at most the in-flight shards.
                            if cache is not None:
                                cache.save(shard.key, data)
                            outcomes[shard.index] = _ShardOutcome(
                                data=data, cached=False)
                            done += 1
                            _notify(shard, data, False)
            finally:
                # Uncollected segments (a worker crash, a parent
                # exception mid-assembly) must not outlive the run.
                _cleanup_shm(shm_names.values())

    # Assembly: member order is the expansion order, never completion
    # order — the bit-for-bit anchor across jobs= settings.  Members are
    # rebuilt from the shard payloads (no second grid expansion).
    results: list[MemberResult] = []
    solve_s = 0.0
    transport_s = 0.0
    for shard in plan.shards:
        out = outcomes[shard.index]
        if not out.cached:
            solve_s += float(out.data.get("seconds", 0.0))
            transport_s += float(out.data.get("transport_s", 0.0))
        ts = out.data["ts"]
        thetas = out.data["thetas"]
        members_by_index = {m["index"]: MemberSpec.from_dict(m)
                            for m in shard.payload["members"]}
        for row, gindex in enumerate(out.data["indices"].tolist()):
            results.append(MemberResult(member=members_by_index[int(gindex)],
                                        ts=ts, thetas=thetas[row]))
    results.sort(key=lambda m: m.index)

    return RunResult(
        spec=plan.spec,
        members=results,
        n_shards=total,
        n_executed=len(pending),
        n_cached=total - len(pending),
        wall_s=time.perf_counter() - t0,
        solve_s=solve_s,
        transport_s=transport_s,
        transport=transport_used,
        worker_omp=worker_omp,
    )


def run_spec(spec: ScenarioSpec, *,
             jobs: int = 1,
             shard_members: int | None = None,
             cache: ResultCache | str | Path | None = None,
             resume: bool = True,
             threads: int | None = None,
             transport: str = "shm",
             progress: Callable[[dict], None] | None = None) -> RunResult:
    """Compile and execute a scenario in one call (the common entry)."""
    plan = compile_plan(spec, shard_members=shard_members)
    return run_plan(plan, jobs=jobs, cache=cache, resume=resume,
                    threads=threads, transport=transport,
                    progress=progress)
