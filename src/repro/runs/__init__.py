"""Run orchestration: declarative campaigns, sharded execution, caching.

The paper's claims are all *campaigns* — grids of simulations — and
this package makes a campaign a first-class object with four layers:

:mod:`repro.runs.spec`
    :class:`ScenarioSpec` — a declarative, JSON-serialisable campaign
    (model + solver + initial condition + parameter/seed axes) with a
    stable content hash; pure expansion into :class:`MemberSpec` grid
    points.
:mod:`repro.runs.plan`
    :func:`compile_plan` — fuse hash-compatible members into stacked
    batched solves (:class:`Shard`), falling back to one shard per
    topology value; deterministic decomposition, independent of the
    worker count.
:mod:`repro.runs.executor`
    :func:`run_plan` / :func:`run_spec` — inline or
    ``ProcessPoolExecutor`` execution with progress callbacks;
    ``jobs=1`` and ``jobs=8`` are bit-for-bit identical.
:mod:`repro.runs.cache` / :mod:`repro.runs.store`
    Content-addressed result cache: finished campaigns replay as pure
    cache hits, killed campaigns resume from completed shards.

Quickstart
----------
>>> from repro.runs import ScenarioSpec, run_spec
>>> spec = ScenarioSpec(
...     name="demo",
...     model={"topology": {"kind": "ring", "n": 8},
...            "potential": {"kind": "tanh"},
...            "t_comp": 0.9, "t_comm": 0.1},
...     t_end=5.0,
...     solver={"method": "rk4"},
...     axes=[("v_p_override", [0.5, 1.0])],
... )
>>> result = run_spec(spec, jobs=1)
>>> len(result.trajectories())
2
"""

from .cache import (
    NUMERICS_VERSION,
    ResultCache,
    fingerprint_files,
    numerics_fingerprint,
    shard_key,
)
from .executor import (
    TRANSPORTS,
    MemberResult,
    RunResult,
    collect_cached,
    drain_queue,
    execute_shard,
    reclaim_stale_segments,
    run_plan,
    run_plan_queue,
    run_spec,
)
from .faults import FaultInjector, InjectedFault, injector_from_env, parse_faults
from .plan import Plan, Shard, compile_plan
from .queue import Lease, QueueRow, WorkQueue
from .spec import (
    MemberSpec,
    ScenarioSpec,
    initial_from_spec,
    model_from_spec,
    potential_from_spec,
    topology_from_spec,
)
from .store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "FaultInjector",
    "InjectedFault",
    "Lease",
    "MemberResult",
    "MemberSpec",
    "NUMERICS_VERSION",
    "Plan",
    "QueueRow",
    "ResultCache",
    "RunResult",
    "ScenarioSpec",
    "Shard",
    "TRANSPORTS",
    "WorkQueue",
    "collect_cached",
    "compile_plan",
    "drain_queue",
    "execute_shard",
    "fingerprint_files",
    "initial_from_spec",
    "injector_from_env",
    "model_from_spec",
    "numerics_fingerprint",
    "parse_faults",
    "potential_from_spec",
    "reclaim_stale_segments",
    "run_plan",
    "run_plan_queue",
    "run_spec",
    "shard_key",
    "topology_from_spec",
]
