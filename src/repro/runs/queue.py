"""Durable SQLite-backed work queue with leases, heartbeats, and retry.

The campaign layer treats every shard as a pure, content-addressed
solve; this module makes the *execution* of those shards crash-safe.  A
:class:`WorkQueue` is a single SQLite file (WAL mode — shareable over a
filesystem between processes or hosts) holding one row per shard:

``pending``
    Available for a worker to claim (possibly with a ``not_before``
    backoff timestamp after a failed attempt).
``leased``
    Claimed by a worker under a **lease**: the claim stamps a unique
    ``lease_id`` and a ``lease_expires`` deadline, and the worker
    **heartbeats** ``last_seen`` to keep extending the lease while the
    solve runs.  Every state transition is *fenced* on the lease id —
    a worker that lost its lease (expired and reaped, shard re-claimed
    elsewhere) cannot complete or fail the shard out from under the
    new owner.
``done``
    Completed; the solve result lives in the shared content-addressed
    :class:`~repro.runs.cache.ResultCache` (the queue stores
    coordination state, never trajectories).
``quarantined``
    Failed ``max_attempts`` times (or kept losing its lease that many
    times).  The captured traceback is stored on the row so a poisoned
    shard is *inspectable* (``pom queue``) instead of poisoning the
    whole campaign with endless retries.

A **reaper** (:meth:`WorkQueue.reap`) returns expired leases to
``pending`` with an exponential backoff (``backoff * 2**(attempts-1)``),
so shards lost to a killed, hung, or partitioned worker are retried —
that, plus the cache as the shared result tier, is what lets a campaign
survive worker SIGKILLs and host loss with bit-identical results.

All timestamps are ``time.time()`` seconds; every mutating method takes
an optional ``now=`` for deterministic tests.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Lease", "QueueRow", "WorkQueue"]

#: shard lifecycle states
STATES = ("pending", "leased", "done", "quarantined")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS shards (
    key          TEXT PRIMARY KEY,
    idx          INTEGER NOT NULL,
    payload      TEXT NOT NULL,
    state        TEXT NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    lease_id     TEXT,
    worker       TEXT,
    lease_expires REAL,
    last_seen    REAL,
    not_before   REAL NOT NULL DEFAULT 0,
    cached       INTEGER NOT NULL DEFAULT 0,
    seconds      REAL,
    error        TEXT,
    enqueued_at  REAL NOT NULL,
    updated_at   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS shards_state ON shards (state, not_before, idx);
CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT);
"""


@dataclass(frozen=True)
class Lease:
    """A claimed shard: what a worker needs to solve and report back."""

    key: str
    index: int
    payload: dict
    lease_id: str
    attempts: int
    expires: float


@dataclass(frozen=True)
class QueueRow:
    """One shard's coordination state (for status displays/reports)."""

    key: str
    index: int
    state: str
    attempts: int
    max_attempts: int
    worker: str | None
    cached: bool
    seconds: float | None
    error: str | None


class WorkQueue:
    """Durable shard queue over one SQLite file (see module docstring).

    Parameters
    ----------
    path:
        The queue database file.  Its parent directory is created; the
        file itself is created on first use and is safe to share
        between any number of worker processes (or hosts over a shared
        filesystem — WAL keeps readers and the single writer happy).
    backoff:
        Base retry delay in seconds; attempt ``k`` of a shard becomes
        claimable again ``backoff * 2**(k-1)`` seconds after it failed
        or lost its lease (exponential backoff between attempts).
    """

    def __init__(self, path: str | Path, *, backoff: float = 0.5) -> None:
        self.path = Path(path)
        self.backoff = float(backoff)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._db() as con:
            con.executescript(_SCHEMA)

    @contextmanager
    def _db(self):
        """A fresh connection per operation: thread- and process-safe.

        Commits on success, closes always — per-operation connections
        keep the queue usable from heartbeat threads and forked workers
        without any shared connection state.
        """
        con = sqlite3.connect(self.path, timeout=30.0)
        try:
            con.execute("PRAGMA journal_mode=WAL")
            con.execute("PRAGMA synchronous=NORMAL")
            con.row_factory = sqlite3.Row
            yield con
            con.commit()
        finally:
            con.close()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def enqueue_plan(self, plan, *, max_attempts: int = 3,
                     now: float | None = None) -> int:
        """Enqueue every shard of a compiled plan; idempotent on key.

        Re-enqueueing an already-known shard (a resumed campaign) never
        resets its state — ``done`` shards stay done, quarantined ones
        stay quarantined.  Returns the number of *newly* added shards.

        Concurrent producers of the same plan (racing service submits)
        are serialised by ``BEGIN IMMEDIATE``, so exactly one of them
        reports the rows as new and their counts sum to the shard
        count.
        """
        now = time.time() if now is None else now
        rows = [(s.key, s.index,
                 json.dumps(s.payload, sort_keys=True,
                            separators=(",", ":")),
                 int(max_attempts), now, now)
                for s in plan.shards]
        with self._db() as con:
            con.execute("BEGIN IMMEDIATE")
            before = con.execute(
                "SELECT COUNT(*) FROM shards").fetchone()[0]
            con.executemany(
                "INSERT OR IGNORE INTO shards "
                "(key, idx, payload, max_attempts, enqueued_at, updated_at) "
                "VALUES (?, ?, ?, ?, ?, ?)", rows)
            con.execute(
                "INSERT OR REPLACE INTO meta (k, v) VALUES ('spec_hash', ?)",
                (plan.spec.content_hash(),))
            after = con.execute("SELECT COUNT(*) FROM shards").fetchone()[0]
            con.execute("COMMIT")
        return after - before

    def requeue(self, keys, *, now: float | None = None) -> int:
        """Force the given shards back to ``pending`` (keep attempts).

        The executor uses this when a shard is marked ``done`` but its
        cached result turns out to be missing or corrupt — the queue's
        view must never outlive the result tier's.
        """
        now = time.time() if now is None else now
        with self._db() as con:
            cur = con.executemany(
                "UPDATE shards SET state='pending', lease_id=NULL, "
                "worker=NULL, lease_expires=NULL, not_before=0, cached=0, "
                "updated_at=? WHERE key=?",
                [(now, k) for k in keys])
            return cur.rowcount

    def requeue_quarantined(self, *, now: float | None = None) -> int:
        """Give every quarantined shard a fresh set of attempts."""
        now = time.time() if now is None else now
        with self._db() as con:
            cur = con.execute(
                "UPDATE shards SET state='pending', attempts=0, "
                "lease_id=NULL, worker=NULL, lease_expires=NULL, "
                "not_before=0, error=NULL, updated_at=? "
                "WHERE state='quarantined'", (now,))
            return cur.rowcount

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def claim(self, worker: str, *, lease_ttl: float = 60.0,
              now: float | None = None) -> Lease | None:
        """Atomically claim the lowest-index claimable shard.

        ``BEGIN IMMEDIATE`` serialises competing claimers, so two
        workers can never hold the same shard.  Returns ``None`` when
        nothing is claimable right now (drained, all leased out, or
        every pending shard is inside its retry backoff window).
        """
        now = time.time() if now is None else now
        lease_id = uuid.uuid4().hex
        with self._db() as con:
            con.execute("BEGIN IMMEDIATE")
            row = con.execute(
                "SELECT key, idx, payload, attempts FROM shards "
                "WHERE state='pending' AND not_before<=? "
                "ORDER BY idx LIMIT 1", (now,)).fetchone()
            if row is None:
                con.execute("COMMIT")
                return None
            con.execute(
                "UPDATE shards SET state='leased', attempts=attempts+1, "
                "lease_id=?, worker=?, lease_expires=?, last_seen=?, "
                "updated_at=? WHERE key=?",
                (lease_id, worker, now + lease_ttl, now, now, row["key"]))
            con.execute("COMMIT")
        return Lease(key=row["key"], index=row["idx"],
                     payload=json.loads(row["payload"]),
                     lease_id=lease_id, attempts=row["attempts"] + 1,
                     expires=now + lease_ttl)

    def heartbeat(self, key: str, lease_id: str, *,
                  lease_ttl: float = 60.0,
                  now: float | None = None) -> bool:
        """Refresh a held lease; ``False`` means the lease was lost.

        A ``False`` return is the fencing signal: the shard expired and
        was reaped (and possibly re-claimed), so this worker's result
        will be ignored by :meth:`complete` — it should stop spending
        effort if it can.
        """
        now = time.time() if now is None else now
        with self._db() as con:
            cur = con.execute(
                "UPDATE shards SET last_seen=?, lease_expires=?, "
                "updated_at=? WHERE key=? AND lease_id=? AND state='leased'",
                (now, now + lease_ttl, now, key, lease_id))
            return cur.rowcount == 1

    def complete(self, key: str, lease_id: str, *, cached: bool = False,
                 seconds: float | None = None,
                 now: float | None = None) -> bool:
        """Mark a leased shard done (fenced on ``lease_id``)."""
        now = time.time() if now is None else now
        with self._db() as con:
            cur = con.execute(
                "UPDATE shards SET state='done', cached=?, seconds=?, "
                "error=NULL, updated_at=? "
                "WHERE key=? AND lease_id=? AND state='leased'",
                (int(cached), seconds, now, key, lease_id))
            return cur.rowcount == 1

    def fail(self, key: str, lease_id: str, error: str, *,
             now: float | None = None) -> str:
        """Record a failed attempt (fenced): retry or quarantine.

        Returns ``"retry"`` (back to ``pending`` with exponential
        backoff), ``"quarantined"`` (attempts exhausted; ``error`` —
        typically a traceback — is stored on the row), or ``"fenced"``
        (this worker no longer owned the shard; no state was changed).
        """
        now = time.time() if now is None else now
        with self._db() as con:
            con.execute("BEGIN IMMEDIATE")
            row = con.execute(
                "SELECT attempts, max_attempts FROM shards "
                "WHERE key=? AND lease_id=? AND state='leased'",
                (key, lease_id)).fetchone()
            if row is None:
                con.execute("COMMIT")
                return "fenced"
            if row["attempts"] >= row["max_attempts"]:
                con.execute(
                    "UPDATE shards SET state='quarantined', lease_id=NULL, "
                    "lease_expires=NULL, error=?, updated_at=? WHERE key=?",
                    (error, now, key))
                verdict = "quarantined"
            else:
                delay = self.backoff * 2.0 ** (row["attempts"] - 1)
                con.execute(
                    "UPDATE shards SET state='pending', lease_id=NULL, "
                    "lease_expires=NULL, not_before=?, error=?, "
                    "updated_at=? WHERE key=?",
                    (now + delay, error, now, key))
                verdict = "retry"
            con.execute("COMMIT")
        return verdict

    # ------------------------------------------------------------------
    # reaper / orchestrator side
    # ------------------------------------------------------------------
    def reap(self, *, now: float | None = None) -> list[str]:
        """Return expired leases to ``pending`` (or quarantine them).

        The reaper is what turns a worker death into a retry: any shard
        whose lease deadline passed without a heartbeat goes back to
        the pool with backoff, or to ``quarantined`` once its attempts
        are exhausted.  Safe to call from any process, any number of
        times.  Returns the keys it transitioned.
        """
        now = time.time() if now is None else now
        moved: list[str] = []
        with self._db() as con:
            con.execute("BEGIN IMMEDIATE")
            rows = con.execute(
                "SELECT key, attempts, max_attempts FROM shards "
                "WHERE state='leased' AND lease_expires<?", (now,)).fetchall()
            for row in rows:
                note = (f"lease expired after attempt {row['attempts']} "
                        "(worker killed, hung, or partitioned)")
                if row["attempts"] >= row["max_attempts"]:
                    con.execute(
                        "UPDATE shards SET state='quarantined', "
                        "lease_id=NULL, lease_expires=NULL, error=?, "
                        "updated_at=? WHERE key=?", (note, now, row["key"]))
                else:
                    delay = self.backoff * 2.0 ** (row["attempts"] - 1)
                    con.execute(
                        "UPDATE shards SET state='pending', lease_id=NULL, "
                        "lease_expires=NULL, not_before=?, error=?, "
                        "updated_at=? WHERE key=?",
                        (now + delay, note, now, row["key"]))
                moved.append(row["key"])
            con.execute("COMMIT")
        return moved

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """``{state: row count}`` over all lifecycle states."""
        with self._db() as con:
            rows = con.execute(
                "SELECT state, COUNT(*) AS n FROM shards "
                "GROUP BY state").fetchall()
        out = {state: 0 for state in STATES}
        out.update({r["state"]: r["n"] for r in rows})
        return out

    def unfinished(self) -> int:
        """Shards not yet ``done`` or ``quarantined``."""
        counts = self.counts()
        return counts["pending"] + counts["leased"]

    def rows(self) -> list[QueueRow]:
        """Every shard's coordination state, in shard order."""
        with self._db() as con:
            rows = con.execute(
                "SELECT key, idx, state, attempts, max_attempts, worker, "
                "cached, seconds, error FROM shards ORDER BY idx").fetchall()
        return [QueueRow(key=r["key"], index=r["idx"], state=r["state"],
                         attempts=r["attempts"],
                         max_attempts=r["max_attempts"], worker=r["worker"],
                         cached=bool(r["cached"]), seconds=r["seconds"],
                         error=r["error"]) for r in rows]

    def quarantined(self) -> list[QueueRow]:
        """The quarantined shards (with their captured tracebacks)."""
        return [r for r in self.rows() if r.state == "quarantined"]

    def spec_hash(self) -> str | None:
        """Content hash of the enqueued campaign, if any."""
        with self._db() as con:
            row = con.execute(
                "SELECT v FROM meta WHERE k='spec_hash'").fetchone()
        return row["v"] if row is not None else None

    def describe(self) -> dict:
        """Status summary for ``pom queue`` and run reports."""
        rows = self.rows()
        return {
            "path": str(self.path),
            "spec_hash": self.spec_hash(),
            "counts": self.counts(),
            "retried": {r.index: r.attempts for r in rows
                        if r.attempts > 1 and r.state == "done"},
            "quarantined": [
                {"shard": r.index, "attempts": r.attempts, "error": r.error}
                for r in rows if r.state == "quarantined"
            ],
        }


def default_queue_sibling(path: str | Path, suffix: str) -> Path:
    """A per-queue companion path (``<queue>.<suffix>``) for cache/state."""
    p = Path(path)
    return p.with_name(p.name + "." + suffix)


def writable_queue_path(path: str | Path) -> bool:
    """Whether a queue database can be created/opened at ``path``.

    The executor's graceful-degradation check: an unwritable location
    (read-only filesystem, missing mount) demotes a queued run to plain
    in-process execution instead of crashing the campaign.
    """
    p = Path(path)
    try:
        p.parent.mkdir(parents=True, exist_ok=True)
        if p.exists() and not os.access(p, os.W_OK):
            return False
        con = sqlite3.connect(p, timeout=5.0)
        try:
            con.execute("PRAGMA journal_mode=WAL")
        finally:
            con.close()
        return True
    except (OSError, sqlite3.Error):
        return False
