"""Deterministic fault injection for the campaign execution layers.

The robustness claims of the queue executor (lease expiry -> retry,
quarantine, cache-integrity recovery, shm reclaim) are only testable if
the failures themselves are reproducible.  This module provides seeded,
countable fault injectors enabled through the ``POM_FAULTS`` environment
variable, so CI chaos legs can run them against the *real* binaries —
``pom run --queue`` / ``pom worker`` subprocesses and the PR-5 process
pool — rather than mocked internals.

Syntax
------
``POM_FAULTS`` is a semicolon-separated list of injectors::

    POM_FAULTS="kill:shard=1;stall:shard=2,secs=3;corrupt-cache"

Each injector is ``kind[:key=value,...]`` with keys:

``shard=I``
    Only fire on shard index ``I`` (default: any shard).
``times=N``
    Fire at most ``N`` times (default 1).  Counts persist across
    process boundaries through the state directory (below), so a
    ``kill`` fires once per campaign, not once per respawned worker.
``p=F`` / ``seed=S``
    Fire with probability ``F`` per eligible event, decided by a
    deterministic RNG seeded on ``(S, injector, event count)`` —
    chaos runs are bit-reproducible.

Kinds and their firing sites:

``kill``
    ``SIGKILL`` the current process at shard start — the no-cleanup
    worker death the lease reaper must recover from.
``stall``
    Sleep ``secs`` at shard start with heartbeats suppressed — a hung
    or network-partitioned worker whose lease must expire under it.
``raise``
    Raise :class:`InjectedFault` at shard start — an ordinary solve
    failure, exercising the retry/backoff/quarantine ladder.
``drop-shm``
    Unlink a worker's shared-memory result segment after it is
    written — a lost transport the pool executor must re-execute.
``corrupt-cache``
    Truncate a freshly written cache entry — a torn write the
    checksummed store must detect and recompute.

State directory
---------------
Fire counts are tiny append-only files under ``POM_FAULTS_STATE``
(one per injector; the file size is the count, appends are atomic).
Orchestrators default it next to the queue database (or a fresh
temporary directory for pool runs) *before* spawning workers, so all
processes of one campaign share one budget.  Without a directory the
counts are per-process.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["FaultSpec", "FaultInjector", "InjectedFault",
           "injector_from_env", "parse_faults",
           "ENV_VAR", "STATE_ENV_VAR"]

#: environment variable holding the injector list
ENV_VAR = "POM_FAULTS"
#: environment variable holding the shared fire-count directory
STATE_ENV_VAR = "POM_FAULTS_STATE"

#: where each injector kind fires
SITES = {
    "kill": "shard-start",
    "stall": "shard-start",
    "raise": "shard-start",
    "drop-shm": "shm-written",
    "corrupt-cache": "cache-saved",
}


class InjectedFault(RuntimeError):
    """The deliberate failure raised by the ``raise`` injector."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed injector (see the module docstring for semantics)."""

    kind: str
    shard: int | None = None
    times: int = 1
    secs: float | None = None
    p: float = 1.0
    seed: int = 0

    @property
    def site(self) -> str:
        """The hook this injector fires at."""
        return SITES[self.kind]

    def ident(self, index: int) -> str:
        """Stable id for fire-count bookkeeping (``index`` = list pos)."""
        shard = "any" if self.shard is None else self.shard
        return f"{index}-{self.kind}-{shard}"


def parse_faults(text: str) -> list[FaultSpec]:
    """Parse a ``POM_FAULTS`` value; raises ``ValueError`` on bad input."""
    specs: list[FaultSpec] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, argtext = part.partition(":")
        kind = kind.strip()
        if kind not in SITES:
            raise ValueError(
                f"unknown fault kind {kind!r}; available: "
                f"{', '.join(sorted(SITES))}")
        kwargs: dict = {}
        for item in filter(None, (a.strip() for a in argtext.split(","))):
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(
                    f"bad fault argument {item!r} (want key=value)")
            if key == "shard":
                kwargs["shard"] = int(value)
            elif key == "times":
                kwargs["times"] = int(value)
            elif key == "secs":
                kwargs["secs"] = float(value)
            elif key == "p":
                kwargs["p"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(f"unknown fault argument {key!r}")
        specs.append(FaultSpec(kind=kind, **kwargs))
    return specs


def _hash_unit(*parts) -> float:
    """Deterministic uniform [0, 1) from the given parts."""
    digest = hashlib.sha256(
        "|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class FaultInjector:
    """Evaluates fault specs at the executor's hook sites.

    Parameters
    ----------
    specs:
        Parsed injectors (usually from :func:`parse_faults`).
    state_dir:
        Shared fire-count directory (``None``: per-process counts).
    """

    def __init__(self, specs: list[FaultSpec],
                 state_dir: str | Path | None = None) -> None:
        self.specs = list(specs)
        self.state_dir = Path(state_dir) if state_dir else None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        self._counts: dict[str, int] = {}

    @classmethod
    def disabled(cls) -> FaultInjector:
        """An injector that never fires (the orchestrator's own path)."""
        return cls([])

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- fire-count bookkeeping ---------------------------------------
    def _count(self, ident: str) -> int:
        if self.state_dir is None:
            return self._counts.get(ident, 0)
        try:
            return (self.state_dir / ident).stat().st_size
        except FileNotFoundError:
            return 0

    def _increment(self, ident: str) -> None:
        if self.state_dir is None:
            self._counts[ident] = self._counts.get(ident, 0) + 1
            return
        # One byte per fire, O_APPEND: atomic enough that concurrent
        # workers can only over-count (fire *less* than budgeted) —
        # never loop forever.
        fd = os.open(self.state_dir / ident,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, b"x")
        finally:
            os.close(fd)

    # -- the hook -----------------------------------------------------
    def fire(self, site: str, *, shard: int | None = None) -> list[FaultSpec]:
        """Evaluate all injectors for ``site``/``shard``.

        Side-effect kinds act here: ``kill`` SIGKILLs the process (does
        not return), ``raise`` raises :class:`InjectedFault`.  Context
        kinds (``stall``, ``drop-shm``, ``corrupt-cache``) are returned
        to the caller, which owns the segment name / cache path / sleep
        needed to apply them.
        """
        fired: list[FaultSpec] = []
        for i, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if spec.shard is not None and shard is not None \
                    and spec.shard != shard:
                continue
            ident = spec.ident(i)
            count = self._count(ident)
            if count >= spec.times:
                continue
            if spec.p < 1.0 and _hash_unit(spec.seed, ident, count) >= spec.p:
                continue
            self._increment(ident)
            if spec.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
                time.sleep(60)  # pragma: no cover - SIGKILL is immediate
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected failure on shard {shard} "
                    f"(POM_FAULTS {spec.kind})")
            fired.append(spec)
        return fired


def injector_from_env(environ=None) -> FaultInjector:
    """The process-wide injector described by ``POM_FAULTS``.

    Returns a disabled injector when the variable is unset or empty —
    the zero-overhead production default.
    """
    environ = os.environ if environ is None else environ
    text = environ.get(ENV_VAR, "").strip()
    if not text:
        return FaultInjector.disabled()
    return FaultInjector(parse_faults(text),
                         state_dir=environ.get(STATE_ENV_VAR) or None)


def ensure_shared_state_dir(default: str | Path) -> None:
    """Pin ``POM_FAULTS_STATE`` before spawning workers.

    Orchestrators call this so every process of one campaign counts
    fires against the same budget; a no-op unless ``POM_FAULTS`` is set
    and no state directory was chosen yet.
    """
    if os.environ.get(ENV_VAR, "").strip() \
            and not os.environ.get(STATE_ENV_VAR):
        Path(default).mkdir(parents=True, exist_ok=True)
        os.environ[STATE_ENV_VAR] = str(default)
