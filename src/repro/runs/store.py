"""Content-addressed on-disk artifact store.

A minimal, dependency-free blob store used by the result cache: each
artifact lives at ``<root>/<key[:2]>/<key><ext>`` where ``key`` is a
hex content hash computed by the caller.  Writes are atomic (temp file
+ ``os.replace``), so a campaign killed mid-write never leaves a
corrupt artifact — the next run simply recomputes the missing shard.
Concurrent writers of the same key converge on identical bytes (keys
are content addresses), so last-write-wins is safe.

Every blob carries an **integrity sidecar** (``<key><ext>.sha256``):
the hex digest of its bytes, written in the same atomic step ordering
(sidecar first, blob last, so a kill between the two leaves a blob-less
sidecar, never an unverifiable blob).  Reads verify the digest when the
sidecar is present; a mismatch — a truncated or bit-flipped entry from
a kill or disk fault — is treated as a *miss* with a one-time warning
rather than poisoning a campaign replay.  Blobs written by older
versions (no sidecar) stay readable.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import warnings
from pathlib import Path
from typing import Iterator

__all__ = ["ArtifactStore"]

_KEY_CHARS = set("0123456789abcdef")

#: suffix of the per-blob integrity sidecar
CHECKSUM_EXT = ".sha256"

#: one warning per process — corrupt entries self-heal by recompute, so
#: repeating the message per shard would drown a chaos run's log
_warned_corrupt = False


def _warn_corrupt_once(path: Path) -> None:
    global _warned_corrupt
    if _warned_corrupt:
        return
    _warned_corrupt = True
    warnings.warn(
        f"cache entry {path} failed its integrity check (truncated or "
        "corrupted, e.g. by a kill mid-write); treating it as a miss and "
        "recomputing — further corrupt entries will be dropped silently",
        RuntimeWarning, stacklevel=3)


class ArtifactStore:
    """Fan-out directory of content-addressed blobs.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _check_key(self, key: str) -> str:
        if len(key) < 8 or not set(key) <= _KEY_CHARS:
            raise ValueError(f"malformed store key {key!r} "
                             "(want a hex content hash)")
        return key

    def path_for(self, key: str, ext: str = ".npz") -> Path:
        """Where the blob for ``key`` lives (whether or not it exists)."""
        key = self._check_key(key)
        return self.root / key[:2] / f"{key}{ext}"

    def has(self, key: str, ext: str = ".npz") -> bool:
        """Whether a blob for ``key`` is present."""
        return self.path_for(key, ext).exists()

    def get_bytes(self, key: str, ext: str = ".npz") -> bytes | None:
        """The blob's verified bytes, or ``None`` when absent/corrupt.

        A blob whose content does not match its integrity sidecar is a
        miss (with a one-time warning): the caller recomputes and the
        bad artifact is overwritten.  Blobs without a sidecar (written
        before checksums existed) are returned unverified.
        """
        path = self.path_for(key, ext)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            expected = Path(str(path) + CHECKSUM_EXT).read_text().strip()
        except FileNotFoundError:
            return data
        if hashlib.sha256(data).hexdigest() != expected:
            _warn_corrupt_once(path)
            return None
        return data

    def _put_atomic(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def put_bytes(self, key: str, data: bytes, ext: str = ".npz") -> Path:
        """Atomically persist ``data`` (and its checksum) under ``key``.

        The sidecar lands before the blob: every observable blob has a
        digest to verify against, and a kill between the two steps
        leaves only an orphan sidecar (harmless — still a miss).
        """
        path = self.path_for(key, ext)
        path.parent.mkdir(parents=True, exist_ok=True)
        digest = hashlib.sha256(data).hexdigest()
        self._put_atomic(Path(str(path) + CHECKSUM_EXT),
                         (digest + "\n").encode())
        self._put_atomic(path, data)
        return path

    def delete(self, key: str, ext: str = ".npz") -> bool:
        """Remove one blob (and its sidecar); returns whether it existed."""
        path = self.path_for(key, ext)
        try:
            Path(str(path) + CHECKSUM_EXT).unlink()
        except FileNotFoundError:
            pass
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def keys(self, ext: str = ".npz") -> Iterator[str]:
        """All stored keys (any fan-out shard)."""
        if not self.root.exists():
            return
        for sub in sorted(self.root.iterdir()):
            if not sub.is_dir():
                continue
            for blob in sorted(sub.iterdir()):
                if blob.suffix != ".tmp" and blob.name.endswith(ext):
                    yield blob.name[: -len(ext)]

    def size_bytes(self) -> int:
        """Total on-disk footprint of the store."""
        if not self.root.exists():
            return 0
        return sum(p.stat().st_size for p in self.root.rglob("*")
                   if p.is_file())
