"""Content-addressed on-disk artifact store.

A minimal, dependency-free blob store used by the result cache: each
artifact lives at ``<root>/<key[:2]>/<key><ext>`` where ``key`` is a
hex content hash computed by the caller.  Writes are atomic (temp file
+ ``os.replace``), so a campaign killed mid-write never leaves a
corrupt artifact — the next run simply recomputes the missing shard.
Concurrent writers of the same key converge on identical bytes (keys
are content addresses), so last-write-wins is safe.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator

__all__ = ["ArtifactStore"]

_KEY_CHARS = set("0123456789abcdef")


class ArtifactStore:
    """Fan-out directory of content-addressed blobs.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _check_key(self, key: str) -> str:
        if len(key) < 8 or not set(key) <= _KEY_CHARS:
            raise ValueError(f"malformed store key {key!r} "
                             "(want a hex content hash)")
        return key

    def path_for(self, key: str, ext: str = ".npz") -> Path:
        """Where the blob for ``key`` lives (whether or not it exists)."""
        key = self._check_key(key)
        return self.root / key[:2] / f"{key}{ext}"

    def has(self, key: str, ext: str = ".npz") -> bool:
        """Whether a blob for ``key`` is present."""
        return self.path_for(key, ext).exists()

    def get_bytes(self, key: str, ext: str = ".npz") -> bytes | None:
        """The blob's bytes, or ``None`` when absent."""
        path = self.path_for(key, ext)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            return None

    def put_bytes(self, key: str, data: bytes, ext: str = ".npz") -> Path:
        """Atomically persist ``data`` under ``key``."""
        path = self.path_for(key, ext)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def delete(self, key: str, ext: str = ".npz") -> bool:
        """Remove one blob; returns whether it existed."""
        path = self.path_for(key, ext)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def keys(self, ext: str = ".npz") -> Iterator[str]:
        """All stored keys (any fan-out shard)."""
        if not self.root.exists():
            return
        for sub in sorted(self.root.iterdir()):
            if not sub.is_dir():
                continue
            for blob in sorted(sub.iterdir()):
                if blob.suffix != ".tmp" and blob.name.endswith(ext):
                    yield blob.name[: -len(ext)]

    def size_bytes(self) -> int:
        """Total on-disk footprint of the store."""
        if not self.root.exists():
            return 0
        return sum(p.stat().st_size for p in self.root.rglob("*")
                   if p.is_file())
