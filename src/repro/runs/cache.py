"""Result cache: shard solves keyed by content + code-relevant versions.

The executor treats every shard as a pure function of its payload — the
member model dicts, seeds, initial conditions, horizon, resolved solver
configuration, and the declared metric set / trajectory capture mode.
This module turns that payload into a stable cache key and
(de)serialises solved shards through the
:class:`~repro.runs.store.ArtifactStore`:

* **key** = sha256 over the canonical JSON of the payload plus the
  *code-relevant versions*: :data:`NUMERICS_VERSION` — now a sha256
  **source fingerprint** of the kernel/integrator/observer code, so any
  change that could alter solver or metric arithmetic invalidates the
  cache automatically instead of relying on a manual bump — and the
  package version.  Environment details that do not change results
  (host name, process count, ``jobs=``) are deliberately excluded —
  that is what makes a cache shared between ``jobs=1`` and ``jobs=8``
  runs, and what makes a *re-run of a finished campaign a pure cache
  hit* and a killed campaign resume from its completed shards.
* **value** = one ``.npz`` blob per shard holding whatever arrays the
  shard produced: trajectory stacks (``ts`` + ``(R, n_t, N)``
  ``thetas``) for capture-mode shards, kilobyte-scale streamed metric
  arrays (``metrics_ts`` + ``metric_<name>``) for metric shards, or
  both — plus the member ``indices`` and the solve wall-clock.
"""

from __future__ import annotations

import functools
import hashlib
import io
import json
import os
from pathlib import Path
from typing import Iterable

import numpy as np

from .store import ArtifactStore

__all__ = ["NUMERICS_VERSION", "ResultCache", "fingerprint_files",
           "numerics_fingerprint", "shard_key"]

#: package-relative directories whose sources define the numerics
_FINGERPRINT_DIRS = ("core", "backends", "integrate", "kernels")

#: extra package-relative files folded into the fingerprint (the
#: streaming observer computes cached metric values, so its source is
#: numerics too)
_FINGERPRINT_EXTRAS = ("metrics/streaming.py",)

#: source suffixes that carry arithmetic (python + embedded C kernels)
_FINGERPRINT_SUFFIXES = (".py", ".c", ".h")


def fingerprint_files(paths: Iterable[str | Path],
                      root: str | Path) -> str:
    """sha256 fingerprint of a set of source files.

    Hashes the sorted ``(relative path, file sha256)`` pairs, so the
    result is independent of filesystem iteration order and of where
    the tree is checked out, but changes whenever any file's *content*
    changes (or a file is added/removed/renamed).  Pure function of the
    file set — the unit tests drive it over temp trees.
    """
    entries = []
    for p in paths:
        p = Path(p)
        rel = os.path.relpath(p, root).replace(os.sep, "/")
        entries.append((rel, hashlib.sha256(p.read_bytes()).hexdigest()))
    entries.sort()
    h = hashlib.sha256()
    for rel, digest in entries:
        h.update(rel.encode())
        h.update(b"\0")
        h.update(digest.encode())
        h.update(b"\0")
    return h.hexdigest()


def _numerics_sources() -> tuple[Path, list[Path]]:
    """The package root and every source file the numerics depend on."""
    pkg = Path(__file__).resolve().parents[1]        # src/repro
    files: list[Path] = []
    for d in _FINGERPRINT_DIRS:
        base = pkg / d
        if not base.is_dir():
            continue
        for suffix in _FINGERPRINT_SUFFIXES:
            files.extend(base.rglob(f"*{suffix}"))
    for extra in _FINGERPRINT_EXTRAS:
        p = pkg / extra
        if p.is_file():
            files.append(p)
    return pkg, files


@functools.lru_cache(maxsize=1)
def numerics_fingerprint() -> str:
    """Source-hash numerics version of this checkout.

    Replaces the manually bumped ``NUMERICS_VERSION`` constant: editing
    any kernel, backend, integrator, or streaming-observer source file
    changes the fingerprint, so every cached shard keyed on the old
    numerics becomes a miss — streamed metrics and trajectories can
    never silently disagree after a numerics change.
    """
    pkg, files = _numerics_sources()
    return fingerprint_files(files, pkg)


#: the numerics version folded into every shard key — a source
#: fingerprint since PR 9 (previously a manual "2026.08-pr5"-style bump)
NUMERICS_VERSION = numerics_fingerprint()


def _package_version() -> str:
    from .. import __version__

    return __version__


def shard_key(payload: dict) -> str:
    """Content address of one shard solve.

    ``payload`` is the executor's shard dict (members + t_end + resolved
    solver + metrics/trajectories).  Keys are invariant under everything
    that cannot change the result — notably the process count and the
    campaign name.
    """
    keyed = {
        "payload": payload,
        "versions": {
            "numerics": NUMERICS_VERSION,
            "repro": _package_version(),
        },
    }
    canonical = json.dumps(keyed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Shard-solve cache on top of a content-addressed artifact store.

    Parameters
    ----------
    root:
        Cache directory (an :class:`ArtifactStore` fan-out), or an
        existing store instance.
    """

    def __init__(self, root: str | Path | ArtifactStore) -> None:
        self.store = (root if isinstance(root, ArtifactStore)
                      else ArtifactStore(root))

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self.store.root

    # ------------------------------------------------------------------
    def load(self, key: str) -> dict | None:
        """Fetch a solved shard; ``None`` on miss or unreadable blob.

        Returns every array the blob holds under its stored name plus
        the ``seconds`` scalar — trajectory shards carry
        ``ts``/``thetas``, metric-only shards carry ``metrics_ts`` /
        ``metric_<name>`` arrays instead; all shards carry ``indices``.
        """
        blob = self.store.get_bytes(key)
        if blob is None:
            return None
        try:
            out: dict = {}
            with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
                for name in npz.files:
                    if name == "seconds":
                        out["seconds"] = float(npz["seconds"][()])
                    else:
                        out[name] = npz[name]
            if "indices" not in out:
                return None
            return out
        except Exception:
            # A truncated or foreign blob (BadZipFile, EOFError, missing
            # arrays, ...) is equivalent to a miss; the shard recomputes
            # and the bad artifact is overwritten.
            return None

    def save(self, key: str, data: dict) -> Path:
        """Persist a solved shard (atomic; safe against kills).

        Stores every ndarray value of ``data`` under its key plus the
        ``seconds`` wall-clock; transient non-array entries (transport
        timings, worker diagnostics) are dropped.
        """
        arrays = {k: v for k, v in data.items()
                  if isinstance(v, np.ndarray)}
        arrays["seconds"] = np.asarray(float(data.get("seconds", 0.0)))
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        return self.store.put_bytes(key, buf.getvalue())

    def has(self, key: str) -> bool:
        """Whether a shard solve is cached."""
        return self.store.has(key)

    def describe(self) -> dict:
        """Metadata for reports and ``pom plan``."""
        return {
            "root": str(self.root),
            "entries": sum(1 for _ in self.store.keys()),
            "size_bytes": self.store.size_bytes(),
            "numerics_version": NUMERICS_VERSION,
        }
