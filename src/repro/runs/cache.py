"""Result cache: shard solves keyed by content + code-relevant versions.

The executor treats every shard as a pure function of its payload — the
member model dicts, seeds, initial conditions, horizon, and resolved
solver configuration.  This module turns that payload into a stable
cache key and (de)serialises solved shards through the
:class:`~repro.runs.store.ArtifactStore`:

* **key** = sha256 over the canonical JSON of the payload plus the
  *code-relevant versions*: :data:`NUMERICS_VERSION` (bumped manually
  whenever a change alters solver/kernel arithmetic) and the package
  version.  Environment details that do not change results (host name,
  process count, ``jobs=``) are deliberately excluded — that is what
  makes a cache shared between ``jobs=1`` and ``jobs=8`` runs, and what
  makes a *re-run of a finished campaign a pure cache hit* and a killed
  campaign resume from its completed shards.
* **value** = one ``.npz`` blob per shard: the shared time mesh and the
  stacked ``(R, n_t, N)`` member phases, exactly the arrays the executor
  fans back out.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path

import numpy as np

from .store import ArtifactStore

__all__ = ["NUMERICS_VERSION", "ResultCache", "shard_key"]

#: bump when a change alters the numerical results of a solve (solver
#: arithmetic, kernel accumulation order, noise-draw order, ...) so
#: stale cached campaigns can never masquerade as fresh ones
NUMERICS_VERSION = "2026.08-pr5"


def _package_version() -> str:
    from .. import __version__

    return __version__


def shard_key(payload: dict) -> str:
    """Content address of one shard solve.

    ``payload`` is the executor's shard dict (members + t_end + resolved
    solver).  Keys are invariant under everything that cannot change the
    result — notably the process count and the campaign name.
    """
    keyed = {
        "payload": payload,
        "versions": {
            "numerics": NUMERICS_VERSION,
            "repro": _package_version(),
        },
    }
    canonical = json.dumps(keyed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Shard-solve cache on top of a content-addressed artifact store.

    Parameters
    ----------
    root:
        Cache directory (an :class:`ArtifactStore` fan-out), or an
        existing store instance.
    """

    def __init__(self, root: str | Path | ArtifactStore) -> None:
        self.store = (root if isinstance(root, ArtifactStore)
                      else ArtifactStore(root))

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self.store.root

    # ------------------------------------------------------------------
    def load(self, key: str) -> dict | None:
        """Fetch a solved shard; ``None`` on miss or unreadable blob."""
        blob = self.store.get_bytes(key)
        if blob is None:
            return None
        try:
            with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
                return {
                    "ts": npz["ts"],
                    "thetas": npz["thetas"],
                    "indices": npz["indices"],
                    "seconds": float(npz["seconds"][()]),
                }
        except Exception:
            # A truncated or foreign blob (BadZipFile, EOFError, missing
            # arrays, ...) is equivalent to a miss; the shard recomputes
            # and the bad artifact is overwritten.
            return None

    def save(self, key: str, data: dict) -> Path:
        """Persist a solved shard (atomic; safe against kills)."""
        buf = io.BytesIO()
        np.savez(
            buf,
            ts=np.asarray(data["ts"], dtype=float),
            thetas=np.asarray(data["thetas"], dtype=float),
            indices=np.asarray(data["indices"], dtype=np.int64),
            seconds=np.asarray(float(data.get("seconds", 0.0))),
        )
        return self.store.put_bytes(key, buf.getvalue())

    def has(self, key: str) -> bool:
        """Whether a shard solve is cached."""
        return self.store.has(key)

    def describe(self) -> dict:
        """Metadata for reports and ``pom plan``."""
        return {
            "root": str(self.root),
            "entries": sum(1 for _ in self.store.keys()),
            "size_bytes": self.store.size_bytes(),
            "numerics_version": NUMERICS_VERSION,
        }
