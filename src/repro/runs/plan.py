"""Campaign planner: compile a :class:`ScenarioSpec` into solve shards.

The planner turns the flat member list of a spec into **shards** — the
units the executor runs and the cache stores.  Members are *fused* into
one shard (a single stacked :func:`~repro.core.simulate_grid` solve
through the heterogeneous batched backend) whenever they are
hash-compatible:

* identical topology dict, or — for the fixed-step methods — any mix of
  topologies that agree on the rank count ``N`` (the heterogeneous
  backend runs mixed edge lists through a padded stacked path that is
  bit-identical to solving each topology group separately), so a
  **topology axis over same-N machine designs fuses into one shard**;
  ``fuse_topologies=False`` restores one shard per topology value, and
  adaptive (``dopri``) campaigns always group per topology because
  shard members share one adaptive mesh;
* identical horizon ``t_end`` (one shared time mesh per solve) and, for
  merged topology groups, identical resolved solver settings —
  including the plan-time ``dt``, so a topology sweep only fuses under
  an explicit ``solver["dt"]`` (the per-group default dt depends on
  kappa and therefore on the topology).

Everything else — coupling strength, period, potential parameters,
noise, seeds, one-off delays, initial conditions — batches freely.

The fixed step ``dt`` is resolved *at plan time* (the spec's value, or
the smallest :func:`~repro.core.simulation.default_dt` over the fused
group), so how a group is later chunked can never change the step.

Chunking (``shard_members=``) splits fused groups into bounded shards
so the multiprocess executor has units to spread: for the fixed-step
methods (``rk4``/``euler``/``em``) member rows are arithmetically
independent, so chunking is **bit-for-bit invariant** — any shard
layout produces the phases of the full-grid batched solve.  For the
adaptive ``dopri`` the members of a shard share one adaptive mesh, so
chunking changes meshes (results stay within solver tolerances); the
default ``shard_members=None`` keeps each fused group whole, which is
what reproduces ``grid_sweep(batched=True)`` bit for bit.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass

from ..core.simulation import default_dt
from ..core.topology import topology_n_from_spec
from .cache import shard_key
from .spec import FIXED_STEP_METHODS, MemberSpec, ScenarioSpec

__all__ = ["Shard", "Plan", "compile_plan", "TRAJ_WARN_ENV_VAR"]

#: env override (bytes) for the full-trajectory footprint warning;
#: <= 0 disables it
TRAJ_WARN_ENV_VAR = "POM_TRAJ_WARN_BYTES"

_TRAJ_WARN_DEFAULT = 128 * 1024 * 1024

#: spec hashes already warned about (the warning is one-time per spec
#: per process — a campaign is typically compiled more than once)
_footprint_warned: set[str] = set()


def _topology_n(topo: dict) -> int:
    """Oscillator count from a topology spec dict, without building it.

    Delegates to the builder registry
    (:func:`repro.core.topology.topology_n_from_spec`), which derives
    ``N`` from structural params (``2**dim`` for hypercubes,
    ``k**2 + (k//2)**2`` for fat-trees, ...) and **raises** on unknown
    kinds or missing params — a silent misestimate here would skew
    footprint warnings and break topology-fusion grouping.
    """
    return topology_n_from_spec(topo)


def _warn_footprint(spec: ScenarioSpec, est_bytes: float) -> None:
    """One-time warning for full-trajectory campaigns that would drown
    the cache; points at the streaming-metrics opt-out."""
    try:
        threshold = float(os.environ.get(TRAJ_WARN_ENV_VAR,
                                         _TRAJ_WARN_DEFAULT))
    except ValueError:
        threshold = _TRAJ_WARN_DEFAULT
    if threshold <= 0 or est_bytes <= threshold:
        return
    shash = spec.content_hash()
    if shash in _footprint_warned:
        return
    _footprint_warned.add(shash)
    warnings.warn(
        f"campaign {spec.name!r} requests full trajectories with an "
        f"estimated (R, n_t, N) footprint of ~{est_bytes / 1e6:.0f} MB; "
        "declare metrics=[...] with trajectories=\"none\" (or thin with "
        "trajectories=\"stride:K\") to cache kilobyte-scale reductions "
        f"instead (threshold: {TRAJ_WARN_ENV_VAR}={threshold:.0f})",
        RuntimeWarning, stacklevel=3)


@dataclass(frozen=True)
class Shard:
    """One executor unit: a batched solve over fused members.

    Attributes
    ----------
    index:
        Position in the plan (execution order is unconstrained; results
        are assembled by member index, not shard index).
    payload:
        JSON-able solve description handed to the worker process:
        ``{"members": [member dicts], "t_end": float, "solver": dict,
        "metrics": [names], "trajectories": mode}``.  The metric set and
        capture mode are part of the cache key — a metric-only shard and
        a full-trajectory shard of the same members are distinct cached
        artefacts.
    key:
        Content-addressed cache key of the solve
        (:func:`repro.runs.cache.shard_key`).
    """

    index: int
    payload: dict
    key: str

    @property
    def n_members(self) -> int:
        """Members fused into this shard."""
        return len(self.payload["members"])

    @property
    def member_indices(self) -> list[int]:
        """Global member indices covered by this shard."""
        return [m["index"] for m in self.payload["members"]]


@dataclass
class Plan:
    """A compiled campaign: the spec plus its shard decomposition."""

    spec: ScenarioSpec
    shards: list[Shard]

    @property
    def n_members(self) -> int:
        """Total members across all shards."""
        return sum(s.n_members for s in self.shards)

    @property
    def n_shards(self) -> int:
        """Number of solve units."""
        return len(self.shards)

    def describe(self, cache=None) -> dict:
        """Metadata for ``pom plan`` and reports.

        With a :class:`~repro.runs.cache.ResultCache` the per-shard
        cache state is included, so a partially finished campaign shows
        exactly which shards a resumed run would still execute.
        """
        shards = []
        for s in self.shards:
            row = {
                "shard": s.index,
                "members": s.n_members,
                "topologies": len({
                    json.dumps(m["model"]["topology"], sort_keys=True)
                    for m in s.payload["members"]}),
                "t_end": s.payload["t_end"],
                "method": s.payload["solver"]["method"],
                "key": s.key[:16],
            }
            if cache is not None:
                row["cached"] = cache.has(s.key)
            shards.append(row)
        out = {
            "name": self.spec.name,
            "spec_hash": self.spec.content_hash()[:16],
            "members": self.n_members,
            "shards": shards,
        }
        if cache is not None:
            out["cache"] = cache.describe()
        return out


def _chunks(seq: list, size: int | None) -> list[list]:
    if size is None or size >= len(seq):
        return [seq]
    return [seq[i:i + size] for i in range(0, len(seq), size)]


def compile_plan(spec: ScenarioSpec, *, shard_members: int | None = None,
                 fuse_topologies: bool | None = None) -> Plan:
    """Compile a scenario into its deterministic shard decomposition.

    Parameters
    ----------
    spec:
        The campaign.
    shard_members:
        Upper bound on members per shard (see the module docstring for
        the bit-for-bit implications); ``None`` keeps each fused group
        as one shard.
    fuse_topologies:
        Whether topology groups that agree on rank count, horizon, and
        resolved solver settings merge into one stacked shard.
        ``None`` (default) fuses exactly for the fixed-step methods,
        where member rows are arithmetically independent and the merge
        is bit-for-bit identical to per-group shards.  ``True`` with an
        adaptive method raises (shard members share one adaptive mesh,
        so merging would change results); ``False`` restores the
        one-shard-per-topology layout.

    The decomposition is a pure function of ``(spec, shard_members,
    fuse_topologies)`` — never of the worker count — which is what makes
    ``jobs=1`` and ``jobs=8`` executions of the same plan bit-for-bit
    identical.
    """
    if shard_members is not None and shard_members < 1:
        raise ValueError("shard_members must be positive")
    members = spec.members()
    solver = spec.solver
    method = solver.get("method", "dopri")
    if fuse_topologies is None:
        fuse_topologies = method in FIXED_STEP_METHODS
    elif fuse_topologies and method not in FIXED_STEP_METHODS:
        raise ValueError(
            "fuse_topologies=True requires a fixed-step method "
            f"({'/'.join(FIXED_STEP_METHODS)}); {method!r} members share "
            "one adaptive mesh per shard, so merging topology groups "
            "would change results")

    # Stage 1: fuse hash-compatible members (identical topology dict and
    # t_end), preserving first-seen group order.
    groups: dict[str, list[MemberSpec]] = {}
    for m in members:
        gkey = json.dumps([m.model["topology"], m.t_end], sort_keys=True,
                          separators=(",", ":"))
        groups.setdefault(gkey, []).append(m)

    # Stage 2: resolve the solver per group (dt over the fused group).
    est_traj_bytes = 0.0
    resolved_groups: list[tuple[list[MemberSpec], dict]] = []
    for group in groups.values():
        dt = solver.get("dt")
        if dt is None:
            # Plan-time resolution over the *fused group* (the exact set
            # simulate_grid would see unchunked), so chunking and the
            # pre-existing grid_sweep(batched=True) path agree on dt.
            dt = min(default_dt(m.build_model()) for m in group)
        resolved = {
            "method": method,
            "dt": float(dt),
            "rtol": float(solver.get("rtol", 1e-6)),
            "atol": float(solver.get("atol", 1e-9)),
            "n_samples": solver.get("n_samples"),
        }
        if method not in FIXED_STEP_METHODS and shard_members is not None \
                and len(group) > shard_members:
            # Not an error — but the caller opted into adaptive meshes
            # that differ from this group's unchunked batched solve;
            # record it (only on the groups actually split) so `pom
            # plan` surfaces the fact and chunked solves never share a
            # cache key with unchunked ones.
            resolved["chunked_adaptive"] = True
        if spec.trajectories == "full":
            n_t = group[0].t_end / float(dt) + 1.0
            n_osc = _topology_n(group[0].model["topology"])
            est_traj_bytes += len(group) * n_t * n_osc * 8.0
        resolved_groups.append((group, resolved))

    # Stage 3: merge topology groups that agree on (N, t_end, resolved
    # solver) into one stacked shard.  Only reached for fixed-step
    # methods, where member rows are arithmetically independent: the
    # merged solve is bit-identical to the per-group solves, and the
    # members are re-sorted by global index so the merge order never
    # depends on axis order.  Note dt sits inside the merge key — a
    # topology axis without an explicit solver dt resolves per-group
    # dts from kappa and (correctly) stays unfused.
    if fuse_topologies:
        merged: dict[str, tuple[list[MemberSpec], dict]] = {}
        for group, resolved in resolved_groups:
            mkey = json.dumps(
                [_topology_n(group[0].model["topology"]), group[0].t_end,
                 resolved], sort_keys=True, separators=(",", ":"))
            if mkey in merged:
                merged[mkey][0].extend(group)
            else:
                merged[mkey] = (list(group), resolved)
        resolved_groups = [(sorted(g, key=lambda m: m.index), r)
                           for g, r in merged.values()]

    shards: list[Shard] = []
    for group, resolved in resolved_groups:
        for chunk in _chunks(group, shard_members):
            payload = {
                "members": [m.to_dict() for m in chunk],
                "t_end": chunk[0].t_end,
                "solver": resolved,
                "metrics": list(spec.metrics),
                "trajectories": spec.trajectories,
            }
            shards.append(Shard(index=len(shards), payload=payload,
                                key=shard_key(payload)))

    _warn_footprint(spec, est_traj_bytes)
    return Plan(spec=spec, shards=shards)
