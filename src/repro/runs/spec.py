"""Declarative scenario specifications for simulation campaigns.

Every paper claim is a *campaign* — a grid of simulations over one or
more parameter axes — and the orchestration layer treats campaigns as
first-class, serialisable objects.  A :class:`ScenarioSpec` describes

* a base **model** as a plain dict (topology, potential, cycle times,
  coupling, noise channels, one-off delays, backend/kernel knobs),
* the **solver** configuration (method, dt, tolerances, resampling),
* the **initial condition** (by name, deterministic given the spec),
* the **axes**: ordered ``(dotted.path, values)`` pairs expanded as a
  Cartesian product over deep copies of the base model — any model
  parameter can be swept, and the special paths ``seed`` / ``t_end``
  sweep the noise realisation and the horizon.

Because every field is a JSON value, a spec serialises losslessly
(:meth:`ScenarioSpec.to_json`), round-trips through files, and carries a
stable :meth:`content_hash` — the identity the result cache is keyed on.
Expansion (:meth:`members`) is pure: the per-member seeds, models, and
initial states are fully determined by the spec, which is what makes
``jobs=1`` and ``jobs=8`` executions bit-for-bit identical.

The dict-to-object builders (:func:`topology_from_spec`,
:func:`potential_from_spec`, ...) are the single place where spec
vocabulary maps onto :mod:`repro.core` constructors; the CLI, the
experiment registry, and the executor workers all go through them.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..core import (
    CompositeNoise,
    ConstantInteractionNoise,
    CouplingSpec,
    GaussianJitter,
    LognormalJitter,
    NoInteractionNoise,
    NoNoise,
    OneOffDelay,
    PhysicalOscillatorModel,
    RandomInteractionNoise,
    StaticLoadImbalance,
    UniformJitter,
    make_topology,
    perturbed,
    potential_from_name,
    random_phases,
    splayed,
    synchronized,
    wavefront,
)
from ..core.coupling import Protocol, WaitMode
from ..metrics.streaming import parse_trajectories, validate_metrics

__all__ = [
    "ScenarioSpec",
    "MemberSpec",
    "topology_from_spec",
    "potential_from_spec",
    "local_noise_from_spec",
    "interaction_noise_from_spec",
    "coupling_from_spec",
    "initial_from_spec",
    "model_from_spec",
]

#: fixed-step integration methods — shard composition cannot change their
#: results, so the planner may split their member groups freely
FIXED_STEP_METHODS = ("rk4", "euler", "em")


# ======================================================================
# dict -> core-object builders
# ======================================================================
def _take(d: dict, *keys: str) -> dict:
    """Subset of ``d``; unknown keys raise so typos never pass silently."""
    extra = set(d) - {"kind", *keys}
    if extra:
        raise ValueError(
            f"unknown key(s) {sorted(extra)} for kind {d.get('kind')!r}; "
            f"accepted: {sorted(keys)}"
        )
    return {k: d[k] for k in keys if k in d}


def topology_from_spec(d: dict):
    """Build a :class:`~repro.core.Topology` from its spec dict.

    Dispatches through the builder registry in
    :mod:`repro.core.topology` — new kinds need exactly one
    :func:`~repro.core.topology.register_topology` call to become
    spec vocabulary.  Unknown kinds raise listing every registered kind
    with its introspected parameters; unknown/missing params raise the
    same way.  ``distances`` values are coerced to ints up front so
    JSON floats round-trip like the legacy dispatch did.
    """
    params = dict(d)
    kind = str(params.pop("kind", "ring"))
    if "distances" in params and params["distances"] is not None:
        params["distances"] = tuple(int(x) for x in params["distances"])
    return make_topology(kind, **params)


def potential_from_spec(d: dict):
    """Build a potential from ``{"kind": name, **params}``."""
    params = dict(d)
    kind = params.pop("kind", "tanh")
    return potential_from_name(kind, **params)


def local_noise_from_spec(d: dict | None):
    """Build a local-noise channel; ``None``/``{"kind": "none"}`` = silent."""
    if d is None:
        return NoNoise()
    kind = d.get("kind", "none")
    if kind == "none":
        return NoNoise()
    if kind == "gaussian":
        return GaussianJitter(**_take(d, "std", "refresh", "clip_sigmas"))
    if kind == "uniform":
        return UniformJitter(**_take(d, "half_width", "refresh"))
    if kind == "lognormal":
        return LognormalJitter(**_take(d, "median", "sigma", "refresh"))
    if kind == "static":
        args = _take(d, "offsets", "amplitude")
        if "offsets" in args and args["offsets"] is not None:
            args["offsets"] = tuple(float(x) for x in args["offsets"])
        return StaticLoadImbalance(**args)
    if kind == "composite":
        parts = tuple(local_noise_from_spec(p) for p in d.get("parts", ()))
        return CompositeNoise(parts=parts)
    raise ValueError(f"unknown local-noise kind {kind!r}")


def interaction_noise_from_spec(d: dict | None):
    """Build the interaction-delay channel; default no delays."""
    if d is None:
        return NoInteractionNoise()
    kind = d.get("kind", "none")
    if kind == "none":
        return NoInteractionNoise()
    if kind == "constant":
        return ConstantInteractionNoise(**_take(d, "tau"))
    if kind == "random":
        return RandomInteractionNoise(**_take(d, "lo", "hi", "refresh"))
    raise ValueError(f"unknown interaction-noise kind {kind!r}")


def coupling_from_spec(d: dict | None) -> CouplingSpec:
    """Build a :class:`CouplingSpec` from its spec dict."""
    if d is None:
        return CouplingSpec()
    args = _take(d, "protocol", "wait_mode", "strength_scale")
    if "protocol" in args:
        args["protocol"] = Protocol(args["protocol"])
    if "wait_mode" in args:
        args["wait_mode"] = WaitMode(args["wait_mode"])
    return CouplingSpec(**args)


def initial_from_spec(d: dict | None, n: int) -> np.ndarray:
    """Build the initial phase vector — deterministic given the dict.

    Random kinds (``random``, ``wavefront`` with noise, ``normal``) seed
    their own generator from the dict's ``seed`` field, *not* from the
    member's noise seed, so the same spec always produces the same
    initial state (the sweep convention: identical start, varying
    noise realisation).
    """
    if d is None:
        return synchronized(n)
    kind = d.get("kind", "sync")
    if kind == "sync":
        return synchronized(n, **_take(d, "phase"))
    if kind == "perturbed":
        return perturbed(n, **_take(d, "rank", "offset"))
    if kind == "random":
        args = _take(d, "spread", "seed")
        seed = args.pop("seed", 0)
        return random_phases(n, rng=int(seed), **args)
    if kind == "splayed":
        return splayed(n, **_take(d, "gap"))
    if kind == "wavefront":
        args = _take(d, "gap", "noise", "seed")
        seed = args.pop("seed", 0)
        return wavefront(n, rng=int(seed), **args)
    if kind == "normal":
        args = _take(d, "std", "seed")
        rng = np.random.default_rng(int(args.get("seed", 0)))
        return rng.normal(0.0, float(args.get("std", 1e-3)), size=n)
    raise ValueError(f"unknown initial-condition kind {kind!r}")


def model_from_spec(d: dict) -> PhysicalOscillatorModel:
    """Build a :class:`PhysicalOscillatorModel` from a model dict."""
    known = {"topology", "potential", "t_comp", "t_comm", "coupling",
             "local_noise", "interaction_noise", "delays", "v_p_override",
             "backend", "kernel"}
    extra = set(d) - known
    if extra:
        raise ValueError(f"unknown model key(s) {sorted(extra)}; "
                         f"accepted: {sorted(known)}")
    delays = tuple(
        OneOffDelay(rank=int(e["rank"]), t_start=float(e["t_start"]),
                    delay=float(e["delay"]),
                    window=(None if e.get("window") is None
                            else float(e["window"])))
        for e in d.get("delays", ())
    )
    return PhysicalOscillatorModel(
        topology=topology_from_spec(d["topology"]),
        potential=potential_from_spec(d.get("potential", {"kind": "tanh"})),
        t_comp=float(d["t_comp"]),
        t_comm=float(d["t_comm"]),
        coupling=coupling_from_spec(d.get("coupling")),
        local_noise=local_noise_from_spec(d.get("local_noise")),
        interaction_noise=interaction_noise_from_spec(
            d.get("interaction_noise")),
        delays=delays,
        v_p_override=(None if d.get("v_p_override") is None
                      else float(d["v_p_override"])),
        backend=d.get("backend", "auto"),
        kernel=d.get("kernel", "auto"),
    )


# ======================================================================
# member expansion
# ======================================================================
def _jsonify(value: Any):
    """Coerce numpy scalars/arrays (and nested containers) to JSON types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def _set_path(target: dict, path: str, value: Any) -> None:
    """Set a dotted path inside a nested dict, creating intermediates."""
    parts = path.split(".")
    node = target
    for p in parts[:-1]:
        nxt = node.get(p)
        if not isinstance(nxt, dict):
            nxt = node[p] = {}
        node = nxt
    node[parts[-1]] = value


@dataclass(frozen=True)
class MemberSpec:
    """One fully resolved grid point of a scenario.

    Attributes
    ----------
    index:
        Position in the expansion order (row-major over the axes).
    model:
        The merged model dict (base with the member's axis values set).
    seed:
        Noise-realisation seed for this member.
    t_end:
        Integration horizon.
    initial:
        Initial-condition dict.
    params:
        ``{axis_path: value}`` — the member's coordinates on the grid.
    """

    index: int
    model: dict
    seed: int
    t_end: float
    initial: dict | None
    params: dict

    def build_model(self) -> PhysicalOscillatorModel:
        """Instantiate the declarative model for this member."""
        return model_from_spec(self.model)

    def build_theta0(self, n: int) -> np.ndarray:
        """Instantiate the initial phase vector."""
        return initial_from_spec(self.initial, n)

    def to_dict(self) -> dict:
        """JSON-able payload (used by workers and the cache key)."""
        return {"index": self.index, "model": self.model, "seed": self.seed,
                "t_end": self.t_end, "initial": self.initial,
                "params": self.params}

    @classmethod
    def from_dict(cls, d: dict) -> "MemberSpec":
        return cls(index=int(d["index"]), model=d["model"],
                   seed=int(d["seed"]), t_end=float(d["t_end"]),
                   initial=d.get("initial"), params=d.get("params", {}))


@dataclass
class ScenarioSpec:
    """A declarative, serialisable simulation campaign.

    Parameters
    ----------
    name:
        Campaign identifier, used for file names and reports.  The name
        is part of the spec hash (renaming = a new campaign) but *not*
        of the shard cache keys, so renamed campaigns still reuse
        cached solves.
    model:
        Base model dict (see :func:`model_from_spec` for the schema).
    t_end:
        Integration horizon (sweepable via the ``t_end`` axis path).
    solver:
        ``{"method": "dopri"|"rk4"|"euler"|"em", "dt": float|None,
        "rtol": float, "atol": float, "n_samples": int|None}`` — all
        optional, defaults mirror :func:`repro.core.simulate`.
    initial:
        Initial-condition dict (see :func:`initial_from_spec`).
    seed:
        Base noise seed, applied to every member unless the ``seed``
        axis overrides it.
    axes:
        Ordered ``(dotted.path, values)`` pairs; the Cartesian product
        (row-major, last axis fastest) defines the members.  Paths are
        relative to the model dict, except the special top-level paths
        ``seed`` and ``t_end``.
    metrics:
        Named in-solve reductions (see
        :data:`repro.metrics.streaming.METRIC_NAMES`) computed by a
        streaming observer per accepted step and cached as
        kilobyte-scale arrays.  Declaration order fixes artefact column
        order.
    trajectories:
        Trajectory capture mode: ``"full"`` (default — the historic
        behaviour), ``"none"`` (metric-only campaigns; shards carry no
        ``(R, n_t, N)`` stacks at all), or ``"stride:K"`` (every K-th
        accepted step plus the endpoints).  Streamed metrics observe
        every accepted step regardless of the capture mode, so a
        trajectory-mode and a metric-only campaign declaring the same
        ``metrics`` produce bit-identical metric arrays.
    """

    name: str
    model: dict
    t_end: float
    solver: dict = field(default_factory=dict)
    initial: dict | None = None
    seed: int = 0
    axes: Sequence[tuple[str, Sequence]] = ()
    metrics: Sequence[str] = ()
    trajectories: str = "full"

    def __post_init__(self) -> None:
        self.t_end = float(self.t_end)
        self.seed = int(self.seed)
        if self.t_end <= 0:
            raise ValueError("t_end must be positive")
        # Coerce axis values to plain JSON scalars/containers up front —
        # sweeps hand in numpy arrays, and np.int64/np.float64 would
        # otherwise blow up json.dumps at hash/plan time.
        self.axes = tuple((str(p), tuple(_jsonify(v) for v in values))
                          for p, values in self.axes)
        for path, values in self.axes:
            if len(values) == 0:
                raise ValueError(f"axis {path!r} has no values")
        extra = set(self.solver) - {"method", "dt", "rtol", "atol",
                                    "n_samples"}
        if extra:
            raise ValueError(
                f"unknown solver key(s) {sorted(extra)}; accepted: "
                "['atol', 'dt', 'method', 'n_samples', 'rtol']"
            )
        method = self.solver.get("method", "dopri")
        if method not in ("dopri", *FIXED_STEP_METHODS):
            raise ValueError(f"unknown solver method {method!r}")
        self.metrics = validate_metrics(self.metrics)
        self.trajectories = str(self.trajectories)
        parse_trajectories(self.trajectories)  # raises on bad syntax
        if self.trajectories != "full" \
                and self.solver.get("n_samples") is not None:
            raise ValueError(
                'n_samples requires trajectories="full" (resampling '
                "needs the full solver mesh)")

    # ------------------------------------------------------------------
    @property
    def n_members(self) -> int:
        """Grid size (product of axis lengths; 1 for no axes)."""
        out = 1
        for _, values in self.axes:
            out *= len(values)
        return out

    def iter_members(self):
        """Lazily expand the Cartesian product into resolved members.

        Pure function of the spec: member order, models, seeds, and
        initial conditions never depend on how (or where) the campaign
        is executed.  A generator, so probing the first member of a
        huge grid costs one deep copy, not one per grid point.
        """
        paths = [p for p, _ in self.axes]
        grids = [v for _, v in self.axes]
        for index, combo in enumerate(itertools.product(*grids)):
            model = copy.deepcopy(self.model)
            seed = self.seed
            t_end = self.t_end
            params = {}
            for path, value in zip(paths, combo):
                params[path] = value
                if path == "seed":
                    seed = int(value)
                elif path == "t_end":
                    t_end = float(value)
                else:
                    _set_path(model, path, value)
            yield MemberSpec(
                index=index, model=model, seed=int(seed), t_end=float(t_end),
                initial=(copy.deepcopy(self.initial)
                         if self.initial is not None else None),
                params=params)

    def members(self) -> list[MemberSpec]:
        """The fully expanded member list (see :meth:`iter_members`)."""
        return list(self.iter_members())

    def validate(self) -> None:
        """Build the first member's model/initial state; raises on typos."""
        first = next(self.iter_members())
        model = first.build_model()
        theta0 = first.build_theta0(model.n)
        if theta0.shape != (model.n,):
            raise ValueError(
                f"initial condition has shape {theta0.shape}, "
                f"expected ({model.n},)")

    # ------------------------------------------------------------------
    # serialisation + identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "model": self.model,
            "t_end": self.t_end,
            "solver": self.solver,
            "initial": self.initial,
            "seed": self.seed,
            "axes": [[p, list(v)] for p, v in self.axes],
            "metrics": list(self.metrics),
            "trajectories": self.trajectories,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        known = {"name", "model", "t_end", "solver", "initial", "seed",
                 "axes", "metrics", "trajectories"}
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown spec key(s) {sorted(extra)}; "
                             f"accepted: {sorted(known)}")
        return cls(
            name=str(d.get("name", "scenario")),
            model=d["model"],
            t_end=float(d["t_end"]),
            solver=d.get("solver") or {},
            initial=d.get("initial"),
            seed=int(d.get("seed", 0)),
            axes=[(p, v) for p, v in d.get("axes", [])],
            metrics=d.get("metrics") or (),
            trajectories=d.get("trajectories", "full"),
        )

    def to_json(self, path: str | Path | None = None, *,
                indent: int = 2) -> str:
        """Serialise; optionally also write to ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "ScenarioSpec":
        """Load from a JSON string or a file path."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(source).read_text()
        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Stable sha256 over the canonical JSON form.

        The identity of the campaign: equal hashes mean equal members,
        solver configuration, and initial conditions — the property the
        result cache keys on.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()
