"""Classic fixed-step fourth-order Runge-Kutta integrator.

Used for cheap, predictable-cost integration of the oscillator model when
noise is injected as a piecewise-constant process (the mesh then aligns
with the noise refresh interval) and as a reference method in the
convergence tests of the adaptive solver.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .solution import Solution, SolverStats, record_stride

__all__ = ["solve_rk4"]


def solve_rk4(
    f: Callable[[float, np.ndarray], np.ndarray],
    t_span: Sequence[float],
    y0: Sequence[float] | np.ndarray,
    *,
    dt: float,
    step_callback: Callable[[float, np.ndarray], None] | None = None,
    observer: Callable[[float, np.ndarray], None] | None = None,
    record: str | int = "full",
) -> Solution:
    """Integrate ``dy/dt = f(t, y)`` with the classic RK4 scheme.

    Parameters
    ----------
    f:
        Right-hand side.
    t_span:
        ``(t0, t_end)``, forward only.
    y0:
        Initial state.
    dt:
        Fixed step; the final step is shortened to land exactly on
        ``t_end``.
    step_callback:
        Called after each step with ``(t, y)``.
    observer:
        Streaming-metrics hook, called with ``(t, y)`` at ``t0`` and
        after *every* step regardless of ``record``.
    record:
        Which states the returned mesh retains: ``"full"`` | ``"none"``
        | stride ``K`` (see
        :func:`repro.integrate.solution.record_stride`).
    """
    t0, t_end = float(t_span[0]), float(t_span[1])
    if not t_end > t0:
        raise ValueError(f"need t_end > t0, got {t_span!r}")
    if dt <= 0:
        raise ValueError("dt must be positive")
    stride = record_stride(record)

    y = np.asarray(y0, dtype=float).copy()
    stats = SolverStats()

    n_full = int(np.floor((t_end - t0) / dt + 1e-12))
    remainder = (t_end - t0) - n_full * dt

    ts = [t0]
    ys = [y.copy()]
    if observer is not None:
        observer(t0, y)
    t = t0
    n_steps = n_full + (1 if remainder > 1e-15 else 0)
    for i in range(n_steps):
        h = dt if i < n_full else remainder
        k1 = np.asarray(f(t, y), dtype=float)
        k2 = np.asarray(f(t + 0.5 * h, y + 0.5 * h * k1), dtype=float)
        k3 = np.asarray(f(t + 0.5 * h, y + 0.5 * h * k2), dtype=float)
        k4 = np.asarray(f(t + h, y + h * k3), dtype=float)
        y = y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        t = t + h
        stats.n_rhs += 4
        stats.n_steps += 1
        if stride is None or (stride and (i + 1) % stride == 0) \
                or i == n_steps - 1:
            ts.append(t)
            ys.append(y.copy())
        if observer is not None:
            observer(t, y)
        if step_callback is not None:
            step_callback(t, y)

    return Solution(ts=np.asarray(ts), ys=np.asarray(ys), stats=stats)
