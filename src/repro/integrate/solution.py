"""Solution containers for the integrators in :mod:`repro.integrate`.

A :class:`Solution` stores the discrete mesh produced by a solver together
with (optionally) a dense-output interpolant so that the trajectory can be
evaluated at arbitrary times inside the integration interval.  This mirrors
what MATLAB's ``ode45`` (used by the paper's artifact) returns and what the
delay-term handling of the physical oscillator model needs: evaluating
``theta_j(t - tau_ij)`` requires interpolating past states between mesh
points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = ["SolverStats", "Solution", "record_stride"]


def record_stride(record) -> int | None:
    """Normalise a solver ``record`` mode to a retention stride.

    ``"full"`` returns ``None`` (keep every accepted step — the historic
    behaviour), ``"none"`` returns ``0`` (keep only the initial and
    final states), and an integer ``K >= 1`` keeps every K-th accepted
    step plus the endpoints.  Thinning only affects which states are
    *retained* in the returned mesh; the step sequence — and therefore
    every propagated value and every streaming-observer call — is
    bit-identical across record modes.
    """
    if record == "full":
        return None
    if record == "none":
        return 0
    k = int(record)
    if k < 1:
        raise ValueError(f"record stride must be >= 1, got {record!r}")
    return k


@dataclass
class SolverStats:
    """Bookkeeping counters accumulated during a solve.

    Attributes
    ----------
    n_rhs:
        Number of right-hand-side evaluations.
    n_steps:
        Number of *accepted* steps.
    n_rejected:
        Number of rejected (re-tried) *whole-state* steps for adaptive
        methods (a step some members passed and others re-stepped is not
        counted here — see ``member_rejections``).
    member_rejections:
        For batched ``(R, N)`` solves with per-member step control: how
        often each member's error estimate exceeded the tolerances on an
        attempted step, shape ``(R,)``.  ``None`` for single-state
        solves and for batched solves without member tracking.
    """

    n_rhs: int = 0
    n_steps: int = 0
    n_rejected: int = 0
    member_rejections: np.ndarray | None = None

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Return the component-wise sum of two stats records."""
        if self.member_rejections is None:
            member = other.member_rejections
        elif other.member_rejections is None:
            member = self.member_rejections
        else:
            member = self.member_rejections + other.member_rejections
        return SolverStats(
            n_rhs=self.n_rhs + other.n_rhs,
            n_steps=self.n_steps + other.n_steps,
            n_rejected=self.n_rejected + other.n_rejected,
            member_rejections=member,
        )


@dataclass
class Solution:
    """Result of an ODE solve.

    Attributes
    ----------
    ts:
        Accepted time points, shape ``(n_points,)``, strictly increasing.
    ys:
        States at ``ts``, shape ``(n_points, n_dim)``.
    stats:
        Solver counters.
    dense:
        Optional callable ``dense(t) -> y`` valid for
        ``ts[0] <= t <= ts[-1]``; vectorised over 1-D arrays of times.
    success:
        ``False`` if the solver aborted (e.g. step size underflow).
    message:
        Human-readable status.
    """

    ts: np.ndarray
    ys: np.ndarray
    stats: SolverStats = field(default_factory=SolverStats)
    dense: Callable[[np.ndarray], np.ndarray] | None = None
    success: bool = True
    message: str = "completed"

    def __post_init__(self) -> None:
        self.ts = np.asarray(self.ts, dtype=float)
        self.ys = np.asarray(self.ys, dtype=float)
        if self.ys.ndim == 1:
            self.ys = self.ys[:, None]
        if self.ts.shape[0] != self.ys.shape[0]:
            raise ValueError(
                f"ts has {self.ts.shape[0]} points but ys has {self.ys.shape[0]} rows"
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def t0(self) -> float:
        """First mesh time."""
        return float(self.ts[0])

    @property
    def t_end(self) -> float:
        """Last mesh time."""
        return float(self.ts[-1])

    @property
    def y_end(self) -> np.ndarray:
        """Final state vector."""
        return self.ys[-1]

    @property
    def n_dim(self) -> int:
        """State dimension."""
        return int(self.ys.shape[1])

    def __len__(self) -> int:
        return int(self.ts.shape[0])

    # ------------------------------------------------------------------
    # Interpolation
    # ------------------------------------------------------------------
    def __call__(self, t: float | Sequence[float] | np.ndarray) -> np.ndarray:
        """Evaluate the solution at time(s) ``t``.

        Uses the dense interpolant when available, else piecewise-linear
        interpolation on the mesh.  Scalars return shape ``(n_dim,)``;
        arrays return shape ``(len(t), n_dim)``.
        """
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        lo, hi = self.ts[0], self.ts[-1]
        eps = 1e-9 * max(1.0, abs(hi))
        if np.any(t_arr < lo - eps) or np.any(t_arr > hi + eps):
            raise ValueError(
                f"evaluation time outside solution interval [{lo}, {hi}]"
            )
        t_arr = np.clip(t_arr, lo, hi)
        if self.dense is not None:
            out = self.dense(t_arr)
        else:
            out = _interp_rows(t_arr, self.ts, self.ys)
        if np.isscalar(t) or (isinstance(t, np.ndarray) and t.ndim == 0):
            return out[0]
        return out

    def resample(self, n_points: int) -> "Solution":
        """Return a new solution re-sampled on a uniform mesh."""
        if n_points < 2:
            raise ValueError("need at least two points to resample")
        ts = np.linspace(self.t0, self.t_end, n_points)
        ys = self(ts)
        return Solution(ts=ts, ys=ys, stats=self.stats, dense=self.dense,
                        success=self.success, message=self.message)


def _interp_rows(t: np.ndarray, ts: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Piecewise-linear interpolation of each state component.

    Works for states of any rank: trailing axes are flattened, each
    component is interpolated independently, and the state shape is
    restored (covers the ``(R, N)`` super-states of batched ensembles).
    """
    state_shape = ys.shape[1:]
    flat = ys.reshape(ys.shape[0], -1)
    out = np.empty((t.shape[0], flat.shape[1]), dtype=float)
    for k in range(flat.shape[1]):
        out[:, k] = np.interp(t, ts, flat[:, k])
    return out.reshape((t.shape[0],) + state_shape)
