"""From-scratch ODE/SDE/DDE integrators for the oscillator model.

The paper's artifact solves Eq. (2) with MATLAB's ``ode45``
(Dormand-Prince 5(4)).  This package provides:

* :func:`solve_dopri45` — the same embedded RK pair with PI step-size
  control and dense output,
* :func:`solve_rk4` — classic fixed-step RK4,
* :func:`solve_euler` / :func:`solve_euler_maruyama` — explicit Euler and
  its stochastic variant for white-noise jitter,
* :class:`HistoryBuffer` — Hermite-interpolated state history for the
  delayed interaction term ``theta_j(t - tau_ij)``.

All solvers return a :class:`Solution`.
"""

from .controller import StepController, error_norm, error_norm_members, initial_step
from .dopri import solve_dopri45
from .euler import solve_euler, solve_euler_maruyama
from .history import HistoryBuffer
from .rk4 import solve_rk4
from .solution import Solution, SolverStats, record_stride

__all__ = [
    "record_stride",
    "StepController",
    "error_norm",
    "error_norm_members",
    "initial_step",
    "solve_dopri45",
    "solve_euler",
    "solve_euler_maruyama",
    "HistoryBuffer",
    "solve_rk4",
    "Solution",
    "SolverStats",
]
