"""Step-size control for adaptive Runge-Kutta methods.

Implements the standard proportional-integral (PI) controller used by
production ODE codes (Hairer/Nørsett/Wanner II.4): the next step size is

    h_new = h * min(f_max, max(f_min, safety * err^(-kI) * err_prev^(-kP)))

with the scaled error norm

    err = sqrt( mean( (e_i / (atol + rtol*max(|y_i|, |y_new_i|)))^2 ) ).

A pure "deadbeat" (I-only) controller is obtained with ``k_p = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["error_norm", "error_norm_members", "StepController"]


def error_norm(err_vec: np.ndarray, y_old: np.ndarray, y_new: np.ndarray,
               rtol: float, atol: float) -> float:
    """Scaled RMS norm of the local error estimate.

    A value <= 1 means the step satisfies the tolerances.

    Shape-agnostic: 1-D states reduce over the whole vector.  For
    stacked states of shape ``(..., N)`` — e.g. the ``(R, N)``
    super-state of a batched seed ensemble — the RMS is taken per
    member (over the last axis) and the *worst* member's norm is
    returned, so every ensemble member individually satisfies the
    tolerances.
    """
    scale = atol + rtol * np.maximum(np.abs(y_old), np.abs(y_new))
    ratio = err_vec / scale
    sq = ratio * ratio
    if sq.ndim <= 1:
        return float(np.sqrt(np.mean(sq)))
    return float(np.sqrt(np.mean(sq, axis=-1)).max())


def error_norm_members(err_vec: np.ndarray, y_old: np.ndarray,
                       y_new: np.ndarray, rtol: float,
                       atol: float) -> np.ndarray:
    """Per-member scaled RMS norms for a stacked state ``(..., N)``.

    Returns the vector of per-member norms (shape ``err_vec.shape[:-1]``)
    whose maximum equals :func:`error_norm`.  The per-member step
    control of the batched solvers uses this to accept the step for the
    members that satisfy the tolerances and re-step only the rest.
    """
    scale = atol + rtol * np.maximum(np.abs(y_old), np.abs(y_new))
    ratio = err_vec / scale
    return np.sqrt(np.mean(ratio * ratio, axis=-1))


@dataclass
class StepController:
    """PI step-size controller for an embedded RK pair of given order.

    Parameters
    ----------
    order:
        Order of the *lower*-order (error-estimating) method plus one,
        i.e. the exponent base q = order used in ``err^(-1/q)``.  For
        Dormand-Prince 5(4) use ``order=5``.
    safety:
        Multiplicative safety factor (< 1).
    f_min, f_max:
        Clamps on the step-size ratio per step.
    beta:
        PI stabilisation coefficient; 0 disables the integral part
        (plain controller).  0.04 is the classic DOPRI choice.
    """

    order: int = 5
    safety: float = 0.9
    f_min: float = 0.2
    f_max: float = 5.0
    beta: float = 0.04

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if not (0.0 < self.safety <= 1.0):
            raise ValueError("safety must be in (0, 1]")
        if self.f_min <= 0 or self.f_max <= self.f_min:
            raise ValueError("need 0 < f_min < f_max")
        self._err_prev = 1.0  # previous accepted error for the PI term

    @property
    def _k_i(self) -> float:
        return 1.0 / self.order - 0.75 * self.beta

    @property
    def _k_p(self) -> float:
        return self.beta

    def propose(self, h: float, err: float, accepted: bool) -> float:
        """Return the next step size given the error of the last attempt."""
        if err <= 0.0:
            # Perfect step (e.g. linear problem below round-off): grow max.
            factor = self.f_max
        else:
            factor = self.safety * err ** (-self._k_i) * self._err_prev ** self._k_p
            factor = min(self.f_max, max(self.f_min, factor))
        if not accepted:
            # Never grow the step after a rejection.
            factor = min(1.0, factor)
        if accepted:
            self._err_prev = max(err, 1e-4)
        return h * factor

    def reset(self) -> None:
        """Forget controller memory (e.g. after a discontinuity)."""
        self._err_prev = 1.0


def initial_step(f, t0: float, y0: np.ndarray, f0: np.ndarray, order: int,
                 rtol: float, atol: float, direction: float = 1.0) -> float:
    """Heuristic starting step (Hairer/Nørsett/Wanner, alg. II.4.14).

    Estimates a step small enough that the first attempt is unlikely to
    be rejected, from the magnitude of the solution and its first two
    derivatives at ``t0``.
    """
    scale = atol + np.abs(y0) * rtol
    d0 = float(np.sqrt(np.mean((y0 / scale) ** 2)))
    d1 = float(np.sqrt(np.mean((f0 / scale) ** 2)))
    h0 = 1e-6 if (d0 < 1e-5 or d1 < 1e-5) else 0.01 * d0 / d1

    y1 = y0 + h0 * direction * f0
    f1 = np.asarray(f(t0 + h0 * direction, y1), dtype=float)
    d2 = float(np.sqrt(np.mean(((f1 - f0) / scale) ** 2))) / h0

    if max(d1, d2) <= 1e-15:
        h1 = max(1e-6, h0 * 1e-3)
    else:
        h1 = (0.01 / max(d1, d2)) ** (1.0 / order)
    return min(100.0 * h0, h1)
