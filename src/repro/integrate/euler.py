"""Explicit Euler and Euler-Maruyama integrators.

The Euler-Maruyama scheme treats the process-local noise ``zeta_i(t)`` of
the physical oscillator model as a genuine stochastic (white-noise)
forcing rather than a frozen piecewise-constant sample.  For an SDE

    dy = f(t, y) dt + g(t, y) dW

the scheme is ``y_{n+1} = y_n + f dt + g sqrt(dt) xi`` with
``xi ~ N(0, I)``.  Strong order 1/2, weak order 1 — adequate for the
qualitative noise studies of the paper (Sec. 6 lists the systematic
study of noise as future work; we expose the machinery).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .solution import Solution, SolverStats, record_stride

__all__ = ["solve_euler", "solve_euler_maruyama"]


def solve_euler(
    f: Callable[[float, np.ndarray], np.ndarray],
    t_span: Sequence[float],
    y0: Sequence[float] | np.ndarray,
    *,
    dt: float,
    step_callback: Callable[[float, np.ndarray], None] | None = None,
    observer: Callable[[float, np.ndarray], None] | None = None,
    record: str | int = "full",
) -> Solution:
    """Integrate with the explicit (forward) Euler scheme, fixed step.

    ``observer`` is called with ``(t, y)`` at ``t0`` and after every
    step — the streaming-metrics hook, independent of which states
    ``record`` retains (``"full"`` | ``"none"`` | stride ``K``, see
    :func:`repro.integrate.solution.record_stride`).
    """
    t0, t_end = float(t_span[0]), float(t_span[1])
    if not t_end > t0:
        raise ValueError(f"need t_end > t0, got {t_span!r}")
    if dt <= 0:
        raise ValueError("dt must be positive")
    stride = record_stride(record)

    y = np.asarray(y0, dtype=float).copy()
    stats = SolverStats()
    n_full = int(np.floor((t_end - t0) / dt + 1e-12))
    remainder = (t_end - t0) - n_full * dt

    ts = [t0]
    ys = [y.copy()]
    if observer is not None:
        observer(t0, y)
    t = t0
    n_steps = n_full + (1 if remainder > 1e-15 else 0)
    for i in range(n_steps):
        h = dt if i < n_full else remainder
        y = y + h * np.asarray(f(t, y), dtype=float)
        t = t + h
        stats.n_rhs += 1
        stats.n_steps += 1
        if stride is None or (stride and (i + 1) % stride == 0) \
                or i == n_steps - 1:
            ts.append(t)
            ys.append(y.copy())
        if observer is not None:
            observer(t, y)
        if step_callback is not None:
            step_callback(t, y)

    return Solution(ts=np.asarray(ts), ys=np.asarray(ys), stats=stats)


def solve_euler_maruyama(
    f: Callable[[float, np.ndarray], np.ndarray],
    g: Callable[[float, np.ndarray], np.ndarray],
    t_span: Sequence[float],
    y0: Sequence[float] | np.ndarray,
    *,
    dt: float,
    rng: np.random.Generator | Sequence | None = None,
    step_callback: Callable[[float, np.ndarray], None] | None = None,
    observer: Callable[[float, np.ndarray], None] | None = None,
    record: str | int = "full",
) -> Solution:
    """Integrate the Itô SDE ``dy = f dt + g dW`` (diagonal noise).

    Parameters
    ----------
    f:
        Drift term ``f(t, y) -> (n,)``.
    g:
        Diffusion term ``g(t, y) -> (n,)`` — per-component noise
        amplitude (diagonal diffusion; off-diagonal correlations are not
        needed for the paper's process-local jitter).
    dt:
        Fixed time step.
    rng:
        NumPy generator (or seed); a fresh default generator is used if
        omitted (pass one for reproducibility).  For batched ``(R, N)``
        states a *sequence* of R generators/seeds draws each member's
        Wiener increments from its own stream, in the exact order the
        sequential one-member-at-a-time solve would — a batched ensemble
        therefore reproduces the per-seed runs bit for bit.
    """
    t0, t_end = float(t_span[0]), float(t_span[1])
    if not t_end > t0:
        raise ValueError(f"need t_end > t0, got {t_span!r}")
    if dt <= 0:
        raise ValueError("dt must be positive")
    stride = record_stride(record)

    y = np.asarray(y0, dtype=float).copy()
    if isinstance(rng, (list, tuple)):
        gens = [r if isinstance(r, np.random.Generator)
                else np.random.default_rng(r) for r in rng]
        if y.ndim < 2 or len(gens) != y.shape[0]:
            raise ValueError(
                f"got {len(gens)} generators for a state of shape "
                f"{y.shape}; a generator sequence needs one entry per "
                "member row"
            )

        def draw() -> np.ndarray:
            return np.stack([gen.standard_normal(y.shape[1:])
                             for gen in gens])
    else:
        gen = rng if isinstance(rng, np.random.Generator) \
            else np.random.default_rng(rng)

        def draw() -> np.ndarray:
            return gen.standard_normal(y.shape)

    stats = SolverStats()
    n_full = int(np.floor((t_end - t0) / dt + 1e-12))
    remainder = (t_end - t0) - n_full * dt

    ts = [t0]
    ys = [y.copy()]
    if observer is not None:
        observer(t0, y)
    t = t0
    n_steps = n_full + (1 if remainder > 1e-15 else 0)
    for i in range(n_steps):
        h = dt if i < n_full else remainder
        drift = np.asarray(f(t, y), dtype=float)
        diff = np.asarray(g(t, y), dtype=float)
        dw = draw() * np.sqrt(h)
        y = y + h * drift + diff * dw
        t = t + h
        stats.n_rhs += 1
        stats.n_steps += 1
        if stride is None or (stride and (i + 1) % stride == 0) \
                or i == n_steps - 1:
            ts.append(t)
            ys.append(y.copy())
        if observer is not None:
            observer(t, y)
        if step_callback is not None:
            step_callback(t, y)

    return Solution(ts=np.asarray(ts), ys=np.asarray(ys), stats=stats)
