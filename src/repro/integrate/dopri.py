"""Dormand-Prince 5(4) adaptive Runge-Kutta solver with dense output.

This is the same method family the paper's MATLAB artifact uses
(``ode45`` is DOPRI 5(4)).  The implementation follows Hairer, Nørsett,
Wanner, *Solving Ordinary Differential Equations I*, with:

* the classic 7-stage FSAL Butcher tableau,
* a PI step-size controller (:mod:`repro.integrate.controller`),
* the 5th-order continuous extension (dense output) needed both for
  event-free resampling and for the delay terms of the oscillator model.

Only explicit, non-stiff problems are targeted; the oscillator ODEs of
the paper are mildly stiff at worst (large beta*kappa), which DOPRI
handles by step-size reduction.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .controller import StepController, error_norm, error_norm_members, initial_step
from .solution import Solution, SolverStats, record_stride

__all__ = ["DOPRI_C", "DOPRI_A", "DOPRI_B5", "DOPRI_B4", "solve_dopri45"]

#: hard cap on step attempts inside one per-member re-step window
_SUBSTEP_LIMIT = 10_000

# ----------------------------------------------------------------------
# Butcher tableau (Dormand & Prince 1980)
# ----------------------------------------------------------------------
DOPRI_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])

DOPRI_A = np.array([
    [0, 0, 0, 0, 0, 0, 0],
    [1 / 5, 0, 0, 0, 0, 0, 0],
    [3 / 40, 9 / 40, 0, 0, 0, 0, 0],
    [44 / 45, -56 / 15, 32 / 9, 0, 0, 0, 0],
    [19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729, 0, 0, 0],
    [9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656, 0, 0],
    [35 / 384, 0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0],
])

# 5th-order weights (the propagating solution; FSAL: equal to last A row).
DOPRI_B5 = np.array([35 / 384, 0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0])

# 4th-order embedded weights (error estimator).
DOPRI_B4 = np.array([
    5179 / 57600, 0, 7571 / 16695, 393 / 640, -92097 / 339200, 187 / 2100, 1 / 40,
])

# Dense-output coefficients: the standard order-4 interpolant of DOPRI5
# expressed through an extra polynomial in sigma = (t - t_n)/h.
_D = np.array([
    -12715105075.0 / 11282082432.0,
    0.0,
    87487479700.0 / 32700410799.0,
    -10690763975.0 / 1880347072.0,
    701980252875.0 / 199316789632.0,
    -1453857185.0 / 822651844.0,
    69997945.0 / 29380423.0,
])


def _contract(w: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Weighted sum of stage derivatives: ``sum_m w[m] * k[m]``.

    Shape-agnostic over the state: ``k`` is ``(m, *state_shape)``; the
    trailing axes are flattened so the contraction is a single BLAS
    vector-matrix product (much cheaper than ``np.tensordot`` for the
    small stage counts used here).
    """
    m = w.shape[0]
    return (w @ k.reshape(m, -1)).reshape(k.shape[1:])


class _DenseOutput:
    """Piecewise DOPRI interpolant (Hairer's CONTD5) over the mesh.

    Each segment stores the five continuation vectors ``rcont1..rcont5``
    and evaluates

        y(sigma) = r1 + s*(r2 + (1-s)*(r3 + s*(r4 + (1-s)*r5)))

    with ``s = (t - t_n)/h`` — the standard 5th-order-accurate
    continuous extension of DOPRI5 (Hairer/Norsett/Wanner, dopri5.f).
    """

    def __init__(self, ts: np.ndarray, ys: np.ndarray, qs: list[np.ndarray]):
        # qs[i] has shape (5, n_dim): rcont1..rcont5 for segment i.
        self.ts = ts
        self.ys = ys
        self.qs = qs

    def __call__(self, t: np.ndarray) -> np.ndarray:
        t = np.atleast_1d(np.asarray(t, dtype=float))
        state_shape = self.ys.shape[1:]
        out = np.empty((t.shape[0],) + state_shape, dtype=float)
        # Segment index for each query point.
        idx = np.searchsorted(self.ts, t, side="right") - 1
        idx = np.clip(idx, 0, len(self.qs) - 1)
        # Broadcast sigma against states of any rank (1-D or batched).
        s_shape = (-1,) + (1,) * len(state_shape)
        for seg in np.unique(idx):
            mask = idx == seg
            t0, t1 = self.ts[seg], self.ts[seg + 1]
            h = t1 - t0
            s = ((t[mask] - t0) / h).reshape(s_shape)
            s1 = 1.0 - s
            r1, r2, r3, r4, r5 = self.qs[seg]
            out[mask] = r1 + s * (r2 + s1 * (r3 + s * (r4 + s1 * r5)))
        return out


def _dense_coefficients(h: float, y0: np.ndarray, y1: np.ndarray,
                        k: np.ndarray) -> np.ndarray:
    """Continuation vectors rcont1..rcont5 for one accepted step.

    ``k`` has shape (7, n_dim); ``y0``/``y1`` are the step endpoints.
    The construction is the literal dopri5.f CONTD5 setup: the _D row
    holds Hairer's dense-output weights.
    """
    ydiff = y1 - y0
    bspl = h * k[0] - ydiff
    r1 = y0
    r2 = ydiff
    r3 = bspl
    r4 = ydiff - h * k[6] - bspl
    r5 = h * _contract(_D, k)
    return np.stack([r1, r2, r3, r4, r5], axis=0)


def _integrate_window(f, t0: float, t1: float, y0: np.ndarray, h0: float,
                      rtol: float, atol: float) -> tuple[np.ndarray, int, bool]:
    """Adaptively advance a member subset over exactly ``[t0, t1]``.

    Used by the per-member step control: when only a few (stiff) members
    reject a step the rest of the batch accepted, those rows are
    re-integrated here with their own sub-steps while the accepted
    members stay frozen at ``t1``.  Returns ``(y(t1), n_rhs, success)``.
    """
    y = np.array(y0, dtype=float, copy=True)
    controller = StepController(order=5)
    k = np.empty((7,) + y.shape, dtype=float)
    k[0] = np.asarray(f(t0, y), dtype=float)
    n_rhs = 1
    t = t0
    h = min(h0, t1 - t0)
    min_step = 1e-14 * max(abs(t0), abs(t1), 1.0)
    for _ in range(_SUBSTEP_LIMIT):
        if t >= t1 - min_step:
            return y, n_rhs, True
        h = min(h, t1 - t)
        if h < min_step:
            return y, n_rhs, False
        for i in range(1, 7):
            yi = y + h * _contract(DOPRI_A[i, :i], k[:i])
            k[i] = np.asarray(f(t + DOPRI_C[i] * h, yi), dtype=float)
        n_rhs += 6
        y_new = y + h * _contract(DOPRI_B5, k)
        err_vec = h * np.abs(_contract(DOPRI_B5 - DOPRI_B4, k))
        err = error_norm(err_vec, y, y_new, rtol, atol)
        if err <= 1.0:
            t = t + h
            y = y_new
            k[0] = k[6]  # FSAL
            h = controller.propose(h, err, accepted=True)
        else:
            h = controller.propose(h, err, accepted=False)
    return y, n_rhs, False


def solve_dopri45(
    f: Callable[[float, np.ndarray], np.ndarray],
    t_span: Sequence[float],
    y0: Sequence[float] | np.ndarray,
    *,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    max_step: float = np.inf,
    first_step: float | None = None,
    max_steps: int = 1_000_000,
    dense_output: bool = True,
    t_eval: Sequence[float] | np.ndarray | None = None,
    step_callback: Callable[[float, np.ndarray], None] | None = None,
    subset_rhs: Callable[[tuple[int, ...]], Callable] | None = None,
    observer: Callable[[float, np.ndarray], None] | None = None,
    record: str | int = "full",
) -> Solution:
    """Integrate ``dy/dt = f(t, y)`` from ``t_span[0]`` to ``t_span[1]``.

    Parameters mirror :func:`scipy.integrate.solve_ivp` where sensible.

    Parameters
    ----------
    f:
        Right-hand side ``f(t, y) -> dy/dt`` (vectorised over the state).
    t_span:
        ``(t0, t_end)`` with ``t_end > t0`` (forward integration only,
        which is all the oscillator model needs).
    y0:
        Initial state.
    rtol, atol:
        Relative/absolute tolerances for the embedded error estimate.
    max_step:
        Upper bound on the step size (used to resolve noise processes
        that are piecewise-constant in time).
    first_step:
        Optional initial step; auto-selected otherwise.
    max_steps:
        Hard cap on accepted steps; exceeding it marks failure.
    dense_output:
        Build the piecewise interpolant (needed for delay terms).
    t_eval:
        If given, the returned mesh is exactly these times (evaluated via
        dense output); the natural mesh is discarded.
    step_callback:
        Called as ``cb(t, y)`` after each accepted step (used by the DDE
        driver to append to the history buffer).
    subset_rhs:
        Per-member step control for stacked ``(R, N)`` states whose
        members are mutually independent (batched ensembles and grids).
        A factory mapping a tuple of member indices to an RHS closure
        over just those rows.  When given, a step that only *some*
        members reject is not retried globally: the passing members are
        frozen at ``t + h`` and the rejected rows are re-integrated over
        ``[t, t + h]`` with their own sub-steps
        (:func:`_integrate_window`), so one stiff member no longer drags
        the whole batch to its step size.  Per-member rejection counts
        are recorded in ``stats.member_rejections``.
    observer:
        Streaming-metrics hook, called with ``(t, y)`` at ``t0`` and
        after every *accepted* step regardless of ``record``.
    record:
        Which accepted states the returned mesh retains: ``"full"`` |
        ``"none"`` | stride ``K`` (see
        :func:`repro.integrate.solution.record_stride`).  Thinned
        retention disables dense output (the interpolant needs every
        segment) and is incompatible with ``t_eval``.

    Returns
    -------
    Solution
    """
    t0, t_end = float(t_span[0]), float(t_span[1])
    if not t_end > t0:
        raise ValueError(f"need t_end > t0, got {t_span!r}")
    stride = record_stride(record)
    if stride is not None:
        if t_eval is not None:
            raise ValueError('t_eval requires record="full"')
        dense_output = False
    y = np.asarray(y0, dtype=float).copy()
    if y.ndim < 1:
        raise ValueError("y0 must have at least one dimension")
    # States may be 1-D vectors or stacked ensembles of shape (R, N);
    # all tableau arithmetic below is shape-agnostic.
    state_shape = y.shape

    stats = SolverStats()

    def rhs(t: float, yy: np.ndarray) -> np.ndarray:
        stats.n_rhs += 1
        out = np.asarray(f(t, yy), dtype=float)
        if out.shape != state_shape:
            raise ValueError(
                f"RHS returned shape {out.shape}, expected {state_shape}"
            )
        return out

    k = np.empty((7,) + state_shape, dtype=float)
    k[0] = rhs(t0, y)

    if first_step is not None:
        h = float(first_step)
    else:
        h = initial_step(rhs, t0, y, k[0], order=5, rtol=rtol, atol=atol)
    h = min(h, max_step, t_end - t0)
    if h <= 0:
        raise ValueError("initial step size must be positive")

    controller = StepController(order=5)

    ts = [t0]
    ys = [y.copy()]
    qs: list[np.ndarray] = []
    if observer is not None:
        observer(t0, y)

    # Per-member bookkeeping for stacked (R, N) states.
    track_members = y.ndim == 2
    member_rej = np.zeros(y.shape[0], dtype=int) if track_members else None

    t = t0
    min_step = 1e-14 * max(abs(t0), abs(t_end), 1.0)
    success = True
    message = "completed"

    while t < t_end:
        if stats.n_steps >= max_steps:
            success = False
            message = f"max_steps={max_steps} exceeded at t={t:.6g}"
            break
        h = min(h, t_end - t)
        if h < min_step:
            success = False
            message = f"step size underflow at t={t:.6g}"
            break

        # --- one attempted step -------------------------------------
        for i in range(1, 7):
            yi = y + h * _contract(DOPRI_A[i, :i], k[:i])
            k[i] = rhs(t + DOPRI_C[i] * h, yi)
        y_new = y + h * _contract(DOPRI_B5, k)
        err_vec = h * np.abs(_contract(DOPRI_B5 - DOPRI_B4, k))
        if track_members:
            errs = error_norm_members(err_vec, y, y_new, rtol, atol)
            err = float(errs.max())
        else:
            errs = None
            err = error_norm(err_vec, y, y_new, rtol, atol)

        accepted = err <= 1.0
        mixed_bad = None
        if not accepted and errs is not None:
            member_rej[errs > 1.0] += 1
            if subset_rhs is not None and bool(np.any(errs <= 1.0)):
                # Mixed step: freeze the passing members at t + h and
                # re-integrate only the rejected rows over [t, t + h].
                bad = np.flatnonzero(errs > 1.0)
                y_bad, n_rhs_sub, ok = _integrate_window(
                    subset_rhs(tuple(int(i) for i in bad)),
                    t, t + h, y[bad], 0.5 * h, rtol, atol)
                stats.n_rhs += n_rhs_sub
                if ok:
                    y_new[bad] = y_bad
                    accepted = True
                    mixed_bad = bad
                    # Grow the shared step from the *accepted* members'
                    # error only — the stiff rows sub-step on their own.
                    err = float(errs[errs <= 1.0].max())

        if accepted:
            if dense_output:
                q = _dense_coefficients(h, y, y_new, k)
                if mixed_bad is not None:
                    # The stage derivatives are invalid for re-stepped
                    # rows; degrade their interpolant to linear.
                    q[1, mixed_bad] = y_new[mixed_bad] - y[mixed_bad]
                    q[2:, mixed_bad] = 0.0
                qs.append(q)
            t = t + h
            stats.n_steps += 1
            if mixed_bad is None:
                k[0] = k[6]  # FSAL
            else:
                k[0] = rhs(t, y_new)  # stage at t is stale for re-stepped rows
            y = y_new
            if stride is None or (stride and stats.n_steps % stride == 0):
                ts.append(t)
                ys.append(y.copy())
            if observer is not None:
                observer(t, y)
            if step_callback is not None:
                step_callback(t, y)
            h = min(controller.propose(h, err, accepted=True), max_step)
        else:
            stats.n_rejected += 1
            h = controller.propose(h, err, accepted=False)

    if stride is not None and ts[-1] != t:
        # Thinned retention must still end on the final accepted state.
        ts.append(t)
        ys.append(y.copy())
    if track_members:
        stats.member_rejections = member_rej
    ts_arr = np.asarray(ts)
    ys_arr = np.asarray(ys)
    dense = _DenseOutput(ts_arr, ys_arr, qs) if (dense_output and qs) else None

    if t_eval is not None:
        t_eval = np.asarray(t_eval, dtype=float)
        if dense is None:
            raise ValueError("t_eval requires dense_output=True")
        ys_arr = dense(t_eval)
        ts_arr = t_eval

    return Solution(ts=ts_arr, ys=ys_arr, stats=stats, dense=dense,
                    success=success, message=message)
