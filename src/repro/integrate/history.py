"""State-history buffer for delay differential equations.

The interaction-noise term of the physical oscillator model retards the
partner phase: ``theta_j(t - tau_ij(t))``.  Solving Eq. (2) with
``tau != 0`` therefore requires access to past states.  The
:class:`HistoryBuffer` records ``(t, y, dy/dt)`` triples as the solver
advances and interpolates between them with cubic Hermite polynomials
(third-order accurate — consistent with the overall accuracy the delay
term needs, since delays in the model are small compared to the
oscillation period).

For query times before the initial time the buffer returns the
user-supplied pre-history function (constant initial phase by default),
which is the standard DDE convention.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["HistoryBuffer"]


class HistoryBuffer:
    """Append-only record of solver states with Hermite interpolation.

    Parameters
    ----------
    t0:
        Initial time of the integration.
    y0:
        Initial state.
    prehistory:
        Optional callable ``phi(t) -> y`` for ``t < t0``.  Defaults to
        the constant ``y0`` (frozen pre-history), matching the paper's
        scenario where all processes start in a well-defined phase
        configuration at t = 0.
    max_points:
        Optional cap; the buffer drops the oldest entries beyond it
        (delays in the model are bounded, so the full history is not
        needed).  ``None`` keeps everything.
    """

    def __init__(
        self,
        t0: float,
        y0: np.ndarray,
        *,
        prehistory: Callable[[float], np.ndarray] | None = None,
        max_points: int | None = None,
    ) -> None:
        y0 = np.asarray(y0, dtype=float)
        self._t0 = float(t0)
        self._y0 = y0.copy()
        self._prehistory = prehistory
        self._max_points = max_points
        self._ts: list[float] = [float(t0)]
        self._ys: list[np.ndarray] = [y0.copy()]
        self._fs: list[np.ndarray | None] = [None]

    # ------------------------------------------------------------------
    def append(self, t: float, y: np.ndarray, f: np.ndarray | None = None) -> None:
        """Record an accepted step.

        ``f`` (the derivative at ``t``) enables cubic Hermite
        interpolation; without it the segment degrades to linear.
        Times must be non-decreasing.
        """
        t = float(t)
        if t < self._ts[-1] - 1e-15:
            raise ValueError(
                f"history times must be non-decreasing: got {t} after {self._ts[-1]}"
            )
        self._ts.append(t)
        self._ys.append(np.asarray(y, dtype=float).copy())
        self._fs.append(None if f is None else np.asarray(f, dtype=float).copy())
        if self._max_points is not None and len(self._ts) > self._max_points:
            drop = len(self._ts) - self._max_points
            del self._ts[:drop]
            del self._ys[:drop]
            del self._fs[:drop]

    @property
    def t_latest(self) -> float:
        """Most recent recorded time."""
        return self._ts[-1]

    def __len__(self) -> int:
        return len(self._ts)

    # ------------------------------------------------------------------
    def __call__(self, t: float) -> np.ndarray:
        """Evaluate the recorded trajectory at time ``t``.

        ``t`` before the first record uses the pre-history.  ``t``
        beyond the latest record — which happens for every sub-step
        stage evaluation when the delay is smaller than the step — is
        *linearly extrapolated* from the latest state and derivative,
        keeping the method-of-steps error second order in the step
        size instead of first order (clamping).
        """
        t = float(t)
        ts = self._ts
        if t <= ts[0]:
            if t < self._t0 and self._prehistory is not None:
                return np.asarray(self._prehistory(t), dtype=float)
            return self._ys[0]
        if t >= ts[-1]:
            f_last = self._fs[-1]
            if f_last is None:
                return self._ys[-1]
            return self._ys[-1] + (t - ts[-1]) * f_last

        # Binary search for the bracketing segment.
        lo, hi = 0, len(ts) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if ts[mid] <= t:
                lo = mid
            else:
                hi = mid

        t0, t1 = ts[lo], ts[hi]
        y0, y1 = self._ys[lo], self._ys[hi]
        h = t1 - t0
        if h <= 0:
            return y1
        s = (t - t0) / h
        f0, f1 = self._fs[lo], self._fs[hi]
        if f0 is None or f1 is None:
            return y0 + s * (y1 - y0)
        # Cubic Hermite basis.
        h00 = (1 + 2 * s) * (1 - s) ** 2
        h10 = s * (1 - s) ** 2
        h01 = s * s * (3 - 2 * s)
        h11 = s * s * (s - 1)
        return h00 * y0 + h10 * h * f0 + h01 * y1 + h11 * h * f1

    def evaluate_many(self, times: np.ndarray) -> np.ndarray:
        """Vectorised convenience wrapper: shape ``(len(times), n_dim)``."""
        return np.stack([self(float(t)) for t in np.asarray(times, dtype=float)])
